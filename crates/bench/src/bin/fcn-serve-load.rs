//! `fcn-serve-load` — closed-loop load generator for the emulation service:
//! the throughput-vs-concurrency trajectory behind `BENCH_serve.json`.
//!
//! Boots an **in-process** daemon ([`fcn_serve::Server`] wrapping the exact
//! production [`fcn_cli::service::CliHandler`], talking real TCP on an
//! ephemeral loopback port) and drives it with closed-loop clients: each
//! client owns one connection and sends its next request only after the
//! previous reply lands, so offered load scales with the client count, not
//! with a timer. The request mix is seeded (~90 % `ping`, ~10 % small warm
//! `beta`), making the *sequence* of requests reproducible even though the
//! measured latencies are wall clock (timing is the product here — the
//! bench crate is the sanctioned DET-TIME exemption).
//!
//! Rows ([`fcn_bench::SERVE_SCHEMA`]):
//!
//! * `closed-loop@c{1,2,4,8}` — throughput plus a latency histogram
//!   (mean/p50/p90/p99/max) at each concurrency level;
//! * `cold-vs-warm` — first `beta` on a never-seen family (pays the
//!   compile) against the immediate repeat served from the warm registry;
//! * `chaos@<rate>` — goodput of a retrying client against a daemon whose
//!   reply path injects seeded wire chaos at `<rate>` per fault category
//!   (`chaos@0` is the clean baseline on the same code path);
//! * `offered@<mult>x` — goodput and shed fraction of heavy closed-loop
//!   clients offering `<mult>×` the admission capacity of a deliberately
//!   tiny daemon, with the latency histogram reporting a concurrent
//!   interactive `ping` probe (the p99 the acceptance bar bounds).
//!
//! Output discipline mirrors `faults`: default writes the committed
//! `BENCH_serve.json` at the repo root through schema-validated row
//! merging; `--quick` (CI smoke, ~800 requests) shadows to
//! `target/BENCH_serve.quick.json`; `--full` scales to 2×10⁵ requests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fcn_bench::{banner, fmt, write_records, RunOpts, Scale, SERVE_SCHEMA};
use fcn_cli::service::CliHandler;
use fcn_serve::{ChaosRates, ChaosSpec, Client, ErrorKind, RetryPolicy, Server, ServerConfig};
use rand::{RngExt, SeedableRng};
use serde::Serialize;

/// One recorded point of the service trajectory (see EXPERIMENTS.md).
/// Fields that do not apply to a row kind are written as zeros so every
/// row carries the full schema.
#[derive(Debug, Serialize)]
struct Row {
    /// Row-format version ([`SERVE_SCHEMA`]).
    schema: String,
    /// Row key: `closed-loop@c<clients>` or `cold-vs-warm`.
    bench: String,
    /// Request mix of the row: `mix` (ping/beta blend) or `beta`.
    kind: String,
    /// Concurrent closed-loop clients.
    clients: usize,
    /// Requests completed in the measurement window.
    requests: usize,
    /// Replies that were not a success (typed error or nonzero exit).
    errors: usize,
    /// Wall-clock window for the whole level, microseconds.
    elapsed_us: u64,
    /// Completed requests per second over the window.
    throughput_rps: f64,
    /// Mean per-request latency, microseconds.
    mean_us: f64,
    /// Latency histogram: median.
    p50_us: u64,
    /// Latency histogram: 90th percentile.
    p90_us: u64,
    /// Latency histogram: 99th percentile.
    p99_us: u64,
    /// Latency histogram: worst observed.
    max_us: u64,
    /// Cold-row only: first request on a never-compiled family.
    cold_us: u64,
    /// Cold-row only: the immediate repeat against the warm registry.
    warm_us: u64,
    /// Cold-row only: `cold_us / warm_us`.
    warm_speedup: f64,
    /// Chaos-row only: per-category injection rate of the daemon's seeded
    /// wire-chaos plan (0 everywhere else).
    chaos_rate: f64,
    /// Offered-row only: offered load as a multiple of admission capacity
    /// (0 everywhere else).
    offered_load: f64,
    /// Offered-row only: fraction of heavy attempts shed with a typed
    /// `Overloaded` (0 everywhere else).
    shed_fraction: f64,
}

impl Row {
    fn blank(bench: String, kind: &str) -> Row {
        Row {
            schema: SERVE_SCHEMA.to_string(),
            bench,
            kind: kind.to_string(),
            clients: 0,
            requests: 0,
            errors: 0,
            elapsed_us: 0,
            throughput_rps: 0.0,
            mean_us: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
            cold_us: 0,
            warm_us: 0,
            warm_speedup: 0.0,
            chaos_rate: 0.0,
            offered_load: 0.0,
            shed_fraction: 0.0,
        }
    }
}

#[allow(clippy::disallowed_methods)] // bench binary: timing is the product
fn now() -> Instant {
    Instant::now()
}

/// `sorted[..]` percentile by nearest-rank on a pre-sorted slice.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// The shared ping-dominant request mix: `requests` sends over an
/// already-connected client; returns (latencies_us, errors).
fn drive_mix(client: &mut Client, seed: u64, requests: usize) -> (Vec<u64>, usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut lat = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for _ in 0..requests {
        // ~90 % pings keep the framing/admission path hot; ~10 % betas make
        // the daemon do real (warm-registry) estimator work.
        let beta = rng.random_bool(0.10);
        let n = if rng.random_bool(0.5) { "16" } else { "36" };
        let t = now();
        let resp = if beta {
            client.call("beta", &["mesh2", n, "--trials", "1"])
        } else {
            client.call("ping", &[])
        };
        lat.push(t.elapsed().as_micros() as u64);
        match resp {
            Ok(r) if r.ok => {}
            _ => errors += 1,
        }
    }
    (lat, errors)
}

/// One closed-loop client: private connection, private seeded mix.
fn client_loop(addr: &str, seed: u64, requests: usize) -> (Vec<u64>, usize) {
    let mut client = Client::connect(addr).expect("connect load client");
    drive_mix(&mut client, seed, requests)
}

/// Run one concurrency level; all clients start together and the window is
/// timed around the whole scope.
fn run_level(addr: &str, clients: usize, per_level: usize) -> Row {
    let per_client = per_level / clients;
    let merged: Mutex<(Vec<u64>, usize)> = Mutex::new((Vec::new(), 0));
    let t = now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let merged = &merged;
            let seed = mix_seed(clients as u64, c as u64);
            scope.spawn(move || {
                let (lat, errors) = client_loop(addr, seed, per_client);
                let mut m = merged.lock().expect("latency merge lock");
                m.0.extend_from_slice(&lat);
                m.1 += errors;
            });
        }
    });
    let elapsed_us = t.elapsed().as_micros() as u64;
    let (mut lat, errors) = merged.into_inner().expect("latency merge lock");
    lat.sort_unstable();
    let requests = lat.len();
    let mut row = Row::blank(format!("closed-loop@c{clients}"), "mix");
    row.clients = clients;
    row.requests = requests;
    row.errors = errors;
    row.elapsed_us = elapsed_us;
    row.throughput_rps = requests as f64 / (elapsed_us as f64 / 1e6);
    row.mean_us = lat.iter().sum::<u64>() as f64 / requests.max(1) as f64;
    row.p50_us = percentile(&lat, 50);
    row.p90_us = percentile(&lat, 90);
    row.p99_us = percentile(&lat, 99);
    row.max_us = lat.last().copied().unwrap_or(0);
    row
}

/// Per-(level, client) seed: reproducible mix, distinct per thread.
fn mix_seed(level: u64, client: u64) -> u64 {
    0x5eed_0ff0 ^ (level << 16) ^ client
}

/// Goodput of one retrying client against a daemon injecting wire chaos at
/// `rate` per fault category. Each rate boots its own daemon so the seeded
/// plan starts from connection 0 and the row is self-contained; `rate == 0`
/// runs the identical client/daemon pair with no plan attached — the clean
/// baseline the chaos rows are read against.
fn chaos_level(rate: f64, per: usize) -> Row {
    let chaos = (rate > 0.0).then(|| {
        let mut spec = ChaosSpec::new(0x00c4_a05e_ed02, ChaosRates::uniform(rate));
        // Short stalls: the row measures retry/replay overhead, not sleep.
        spec.max_stall_ms = 2;
        spec
    });
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        chaos,
        poll_interval_ms: 5,
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::bind(config, CliHandler::new()).expect("bind chaos daemon"));
    let addr = server
        .local_addr()
        .expect("chaos daemon address")
        .to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let runner = {
        let server = Arc::clone(&server);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || server.run(&shutdown))
    };

    // The retrying client is the product under test here: reconnect + seeded
    // backoff on torn replies, idempotent replay for completed-but-lost ones.
    // A generous budget covers deterministic failure streaks at high rates.
    let policy = RetryPolicy::fast(50, 0xbacc_0ff5 ^ rate.to_bits());
    let mut client = Client::connect_retrying(&addr, policy).expect("connect retrying client");
    let t = now();
    let (mut lat, errors) = drive_mix(&mut client, 0x00c4_a05e ^ rate.to_bits(), per);
    let elapsed_us = t.elapsed().as_micros() as u64;
    drop(client);

    // ordering: Release pairs with the accept loop's Acquire-side poll.
    shutdown.store(true, Ordering::Release);
    runner.join().expect("chaos runner").expect("chaos drain");

    lat.sort_unstable();
    let ok = lat.len() - errors;
    let mut row = Row::blank(format!("chaos@{rate}"), "mix");
    row.clients = 1;
    row.requests = lat.len();
    row.errors = errors;
    row.elapsed_us = elapsed_us;
    // Goodput: only successfully recovered replies count.
    row.throughput_rps = ok as f64 / (elapsed_us as f64 / 1e6);
    row.mean_us = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
    row.p50_us = percentile(&lat, 50);
    row.p90_us = percentile(&lat, 90);
    row.p99_us = percentile(&lat, 99);
    row.max_us = lat.last().copied().unwrap_or(0);
    row.chaos_rate = rate;
    row
}

/// Heavy closed-loop clients offering `mult ×` the capacity of a tiny
/// daemon (`max_inflight` slots, a one-deep queue, a 1 ms wait budget), with
/// a concurrent interactive `ping` probe. Goodput is completed heavy work;
/// the histogram fields report the probe's latency — the "interactive kinds
/// stay responsive at 4× saturation" number.
fn offered_level(addr: &str, max_inflight: usize, mult: usize, per_client: usize) -> Row {
    let clients = max_inflight * mult;
    let merged: Mutex<(usize, usize, usize)> = Mutex::new((0, 0, 0)); // (ok, shed, errors)
    let probe_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let stop_probe = AtomicBool::new(false);
    let t = now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let merged = &merged;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect heavy client");
                let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
                for _ in 0..per_client {
                    match client.call("beta", &["mesh2", "64", "--trials", "1"]) {
                        Ok(r) if r.ok => ok += 1,
                        Ok(r)
                            if r.error.as_ref().map(|e| e.kind) == Some(ErrorKind::Overloaded) =>
                        {
                            shed += 1
                        }
                        _ => errors += 1,
                    }
                }
                let mut m = merged.lock().expect("offered merge lock");
                m.0 += ok;
                m.1 += shed;
                m.2 += errors;
            });
        }
        // One interactive probe pings for the whole window: admission must
        // never queue or shed it no matter how saturated the heavy lanes are.
        let probe_lat = &probe_lat;
        let stop_probe = &stop_probe;
        scope.spawn(move || {
            let mut probe = Client::connect(addr).expect("connect ping probe");
            let mut lat = Vec::new();
            // ordering: Relaxed — a plain stop flag; no data rides on it.
            while !stop_probe.load(Ordering::Relaxed) {
                let t = now();
                let resp = probe.call("ping", &[]).expect("probe ping");
                assert!(resp.ok, "interactive ping failed under load: {resp:?}");
                lat.push(t.elapsed().as_micros() as u64);
            }
            *probe_lat.lock().expect("probe latency lock") = lat;
        });
        // Scoped spawn order makes the probe last; stop it once every heavy
        // client has finished. The heavy threads are joined by scope exit,
        // so flag-then-exit is race-free: set the flag from a watcher.
        let watcher_merged = &merged;
        let watcher_stop = stop_probe;
        scope.spawn(move || {
            let total = clients * per_client;
            loop {
                let m = watcher_merged.lock().expect("offered merge lock");
                if m.0 + m.1 + m.2 >= total {
                    break;
                }
                drop(m);
                std::thread::yield_now();
            }
            // ordering: Relaxed — see the probe's load above.
            watcher_stop.store(true, Ordering::Relaxed);
        });
    });
    let elapsed_us = t.elapsed().as_micros() as u64;
    let (ok, shed, errors) = merged.into_inner().expect("offered merge lock");
    let mut lat = probe_lat.into_inner().expect("probe latency lock");
    lat.sort_unstable();
    let attempts = ok + shed + errors;
    let mut row = Row::blank(format!("offered@{mult}x"), "beta");
    row.clients = clients;
    row.requests = attempts;
    row.errors = errors;
    row.elapsed_us = elapsed_us;
    row.throughput_rps = ok as f64 / (elapsed_us as f64 / 1e6);
    row.mean_us = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
    row.p50_us = percentile(&lat, 50);
    row.p90_us = percentile(&lat, 90);
    row.p99_us = percentile(&lat, 99);
    row.max_us = lat.last().copied().unwrap_or(0);
    row.offered_load = mult as f64;
    row.shed_fraction = shed as f64 / attempts.max(1) as f64;
    row
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let quick = opts.scale == Scale::Quick;
    // Requests per concurrency level; levels are fixed so the committed
    // trajectory always has the same row keys.
    let per_level = match opts.scale {
        Scale::Quick => 200,
        Scale::Default => 5_000,
        Scale::Full => 50_000,
    };
    let levels = [1usize, 2, 4, 8];

    // The production daemon serves with telemetry enabled (metrics requests
    // need counters to render); the load run mirrors that so the measured
    // cost includes the instrumentation the real service pays.
    fcn_telemetry::global().set_enabled(true);

    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        // Above the deepest level (8 closed-loop clients) so admission
        // never rejects: this section measures service time, not shedding
        // (the offered@ rows do that against their own tiny daemon).
        max_inflight: 16,
        poll_interval_ms: 5,
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::bind(config, CliHandler::new()).expect("bind in-process daemon"));
    let addr = server
        .local_addr()
        .expect("resolve in-process daemon address")
        .to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let runner = {
        let server = Arc::clone(&server);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || server.run(&shutdown))
    };

    banner("fcn-serve closed-loop trajectory (in-process daemon, real TCP)");
    println!(
        "daemon at {addr}; {} requests/level over levels {levels:?}\n",
        per_level
    );
    println!(
        "{:>8} {:>9} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "clients", "requests", "errors", "thrpt r/s", "mean µs", "p50", "p90", "p99", "max"
    );
    let mut rows: Vec<Row> = Vec::new();
    for &clients in &levels {
        let row = run_level(&addr, clients, per_level);
        println!(
            "{:>8} {:>9} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9} {:>9}",
            row.clients,
            row.requests,
            row.errors,
            fmt(row.throughput_rps),
            fmt(row.mean_us),
            row.p50_us,
            row.p90_us,
            row.p99_us,
            row.max_us
        );
        rows.push(row);
    }

    // Cold vs warm: a family no load level touches (mesh2 n=1024), so the
    // first request pays the registry compile and the repeat does not.
    banner("cold vs warm registry (beta mesh2 1024)");
    let mut probe = Client::connect(&addr).expect("connect cold/warm probe");
    let cold_args = ["mesh2", "1024", "--trials", "1"];
    let t = now();
    let cold_resp = probe.call("beta", &cold_args).expect("cold beta reply");
    let cold_us = t.elapsed().as_micros() as u64;
    let t = now();
    let warm_resp = probe.call("beta", &cold_args).expect("warm beta reply");
    let warm_us = t.elapsed().as_micros() as u64;
    assert!(
        cold_resp.ok && warm_resp.ok,
        "cold/warm probes must succeed"
    );
    assert_eq!(
        cold_resp.output, warm_resp.output,
        "warm registry must not change the answer"
    );
    let mut cw = Row::blank("cold-vs-warm".to_string(), "beta");
    cw.clients = 1;
    cw.requests = 2;
    cw.cold_us = cold_us;
    cw.warm_us = warm_us;
    cw.warm_speedup = cold_us as f64 / warm_us.max(1) as f64;
    println!(
        "cold {} µs  warm {} µs  speedup {}×",
        cold_us,
        warm_us,
        fmt(cw.warm_speedup)
    );
    rows.push(cw);

    // ordering: Release pairs with the accept loop's Acquire-side poll of
    // the shutdown flag; everything the clients did happens-before drain.
    shutdown.store(true, Ordering::Release);
    runner
        .join()
        .expect("daemon runner thread")
        .expect("daemon drained cleanly");

    // Goodput vs chaos rate: what resilience costs. Each rate gets its own
    // chaos-wrapped daemon and one retrying client; errors here would mean
    // a retry budget exhausted, which the committed trajectory should never
    // show at these rates.
    banner("goodput vs wire-chaos rate (retrying client)");
    let per_chaos = match opts.scale {
        Scale::Quick => 60,
        Scale::Default => 600,
        Scale::Full => 3_000,
    };
    println!(
        "{:>10} {:>9} {:>7} {:>12} {:>10} {:>9} {:>9}",
        "rate", "requests", "errors", "goodput r/s", "mean µs", "p99", "max"
    );
    for rate in [0.0, 0.05, 0.15] {
        let row = chaos_level(rate, per_chaos);
        println!(
            "{:>10} {:>9} {:>7} {:>12} {:>10} {:>9} {:>9}",
            row.chaos_rate,
            row.requests,
            row.errors,
            fmt(row.throughput_rps),
            fmt(row.mean_us),
            row.p99_us,
            row.max_us
        );
        rows.push(row);
    }

    // Goodput vs offered load: a tiny daemon (2 slots, 1-deep queue, 1 ms
    // wait budget) driven past saturation. The shed fraction should climb
    // with the multiplier while the interactive probe's p99 stays flat.
    banner("goodput vs offered load (tiny daemon, interactive probe)");
    let tiny = ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_inflight: 2,
        max_queued: 1,
        queue_wait_ms: 1,
        poll_interval_ms: 5,
        ..ServerConfig::default()
    };
    let tiny_inflight = tiny.max_inflight;
    let tiny_server = Arc::new(Server::bind(tiny, CliHandler::new()).expect("bind tiny daemon"));
    let tiny_addr = tiny_server
        .local_addr()
        .expect("tiny daemon address")
        .to_string();
    let tiny_shutdown = Arc::new(AtomicBool::new(false));
    let tiny_runner = {
        let server = Arc::clone(&tiny_server);
        let shutdown = Arc::clone(&tiny_shutdown);
        std::thread::spawn(move || server.run(&shutdown))
    };
    // Pre-warm the heavy family so no offered level pays the compile.
    let mut warmup = Client::connect(&tiny_addr).expect("connect warmup");
    assert!(
        warmup
            .call("beta", &["mesh2", "64", "--trials", "1"])
            .expect("warmup beta")
            .ok
    );
    drop(warmup);
    let per_offered = match opts.scale {
        Scale::Quick => 20,
        Scale::Default => 150,
        Scale::Full => 600,
    };
    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>10} {:>9}",
        "offered", "attempts", "shed", "goodput r/s", "shed frac", "ping p99"
    );
    for mult in [1usize, 2, 4] {
        let row = offered_level(&tiny_addr, tiny_inflight, mult, per_offered);
        println!(
            "{:>7}x {:>9} {:>9} {:>12} {:>10} {:>9}",
            mult,
            row.requests,
            (row.shed_fraction * row.requests as f64).round() as u64,
            fmt(row.throughput_rps),
            fmt(row.shed_fraction),
            row.p99_us
        );
        rows.push(row);
    }
    // ordering: Release pairs with the accept loop's Acquire-side poll.
    tiny_shutdown.store(true, Ordering::Release);
    tiny_runner
        .join()
        .expect("tiny daemon runner")
        .expect("tiny daemon drained cleanly");

    let path = write_records("serve", &rows).expect("write serve records");
    println!("\nrecords: {}", path.display());

    // The committed trajectory (or its quick shadow), merged under the same
    // schema-validated discipline as BENCH_faults.json.
    let curve_path = if quick {
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_serve.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_serve.json")
    };
    let existing = match std::fs::read_to_string(&curve_path) {
        Ok(body) => match fcn_bench::validate_serve_rows(&body) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "error: existing {} is not mergeable: {e}",
                    curve_path.display()
                );
                std::process::exit(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let fresh: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            let line = serde_json::to_string(r).expect("row serializes");
            (r.bench.clone(), line)
        })
        .collect();
    let body = fcn_bench::merge_bench_rows(&existing, &fresh);
    if let Err(e) = std::fs::write(&curve_path, body) {
        eprintln!("error: cannot write {}: {e}", curve_path.display());
        std::process::exit(2);
    }
    println!("wrote {} rows to {}", rows.len(), curve_path.display());
}
