//! `fcn-serve-load` — closed-loop load generator for the emulation service:
//! the throughput-vs-concurrency trajectory behind `BENCH_serve.json`.
//!
//! Boots an **in-process** daemon ([`fcn_serve::Server`] wrapping the exact
//! production [`fcn_cli::service::CliHandler`], talking real TCP on an
//! ephemeral loopback port) and drives it with closed-loop clients: each
//! client owns one connection and sends its next request only after the
//! previous reply lands, so offered load scales with the client count, not
//! with a timer. The request mix is seeded (~90 % `ping`, ~10 % small warm
//! `beta`), making the *sequence* of requests reproducible even though the
//! measured latencies are wall clock (timing is the product here — the
//! bench crate is the sanctioned DET-TIME exemption).
//!
//! Rows ([`fcn_bench::SERVE_SCHEMA`]):
//!
//! * `closed-loop@c{1,2,4,8}` — throughput plus a latency histogram
//!   (mean/p50/p90/p99/max) at each concurrency level;
//! * `cold-vs-warm` — first `beta` on a never-seen family (pays the
//!   compile) against the immediate repeat served from the warm registry.
//!
//! Output discipline mirrors `faults`: default writes the committed
//! `BENCH_serve.json` at the repo root through schema-validated row
//! merging; `--quick` (CI smoke, ~800 requests) shadows to
//! `target/BENCH_serve.quick.json`; `--full` scales to 2×10⁵ requests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fcn_bench::{banner, fmt, write_records, RunOpts, Scale, SERVE_SCHEMA};
use fcn_cli::service::CliHandler;
use fcn_serve::{Client, Server, ServerConfig};
use rand::{RngExt, SeedableRng};
use serde::Serialize;

/// One recorded point of the service trajectory (see EXPERIMENTS.md).
/// Fields that do not apply to a row kind are written as zeros so every
/// row carries the full schema.
#[derive(Debug, Serialize)]
struct Row {
    /// Row-format version ([`SERVE_SCHEMA`]).
    schema: String,
    /// Row key: `closed-loop@c<clients>` or `cold-vs-warm`.
    bench: String,
    /// Request mix of the row: `mix` (ping/beta blend) or `beta`.
    kind: String,
    /// Concurrent closed-loop clients.
    clients: usize,
    /// Requests completed in the measurement window.
    requests: usize,
    /// Replies that were not a success (typed error or nonzero exit).
    errors: usize,
    /// Wall-clock window for the whole level, microseconds.
    elapsed_us: u64,
    /// Completed requests per second over the window.
    throughput_rps: f64,
    /// Mean per-request latency, microseconds.
    mean_us: f64,
    /// Latency histogram: median.
    p50_us: u64,
    /// Latency histogram: 90th percentile.
    p90_us: u64,
    /// Latency histogram: 99th percentile.
    p99_us: u64,
    /// Latency histogram: worst observed.
    max_us: u64,
    /// Cold-row only: first request on a never-compiled family.
    cold_us: u64,
    /// Cold-row only: the immediate repeat against the warm registry.
    warm_us: u64,
    /// Cold-row only: `cold_us / warm_us`.
    warm_speedup: f64,
}

impl Row {
    fn blank(bench: String, kind: &str) -> Row {
        Row {
            schema: SERVE_SCHEMA.to_string(),
            bench,
            kind: kind.to_string(),
            clients: 0,
            requests: 0,
            errors: 0,
            elapsed_us: 0,
            throughput_rps: 0.0,
            mean_us: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
            cold_us: 0,
            warm_us: 0,
            warm_speedup: 0.0,
        }
    }
}

#[allow(clippy::disallowed_methods)] // bench binary: timing is the product
fn now() -> Instant {
    Instant::now()
}

/// `sorted[..]` percentile by nearest-rank on a pre-sorted slice.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// One closed-loop client: `requests` sends over a private connection with
/// a private seeded mix; returns (latencies_us, errors).
fn client_loop(addr: &str, seed: u64, requests: usize) -> (Vec<u64>, usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut client = Client::connect(addr).expect("connect load client");
    let mut lat = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for _ in 0..requests {
        // ~90 % pings keep the framing/admission path hot; ~10 % betas make
        // the daemon do real (warm-registry) estimator work.
        let beta = rng.random_bool(0.10);
        let n = if rng.random_bool(0.5) { "16" } else { "36" };
        let t = now();
        let resp = if beta {
            client.call("beta", &["mesh2", n, "--trials", "1"])
        } else {
            client.call("ping", &[])
        };
        lat.push(t.elapsed().as_micros() as u64);
        match resp {
            Ok(r) if r.ok => {}
            _ => errors += 1,
        }
    }
    (lat, errors)
}

/// Run one concurrency level; all clients start together and the window is
/// timed around the whole scope.
fn run_level(addr: &str, clients: usize, per_level: usize) -> Row {
    let per_client = per_level / clients;
    let merged: Mutex<(Vec<u64>, usize)> = Mutex::new((Vec::new(), 0));
    let t = now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let merged = &merged;
            let seed = mix_seed(clients as u64, c as u64);
            scope.spawn(move || {
                let (lat, errors) = client_loop(addr, seed, per_client);
                let mut m = merged.lock().expect("latency merge lock");
                m.0.extend_from_slice(&lat);
                m.1 += errors;
            });
        }
    });
    let elapsed_us = t.elapsed().as_micros() as u64;
    let (mut lat, errors) = merged.into_inner().expect("latency merge lock");
    lat.sort_unstable();
    let requests = lat.len();
    let mut row = Row::blank(format!("closed-loop@c{clients}"), "mix");
    row.clients = clients;
    row.requests = requests;
    row.errors = errors;
    row.elapsed_us = elapsed_us;
    row.throughput_rps = requests as f64 / (elapsed_us as f64 / 1e6);
    row.mean_us = lat.iter().sum::<u64>() as f64 / requests.max(1) as f64;
    row.p50_us = percentile(&lat, 50);
    row.p90_us = percentile(&lat, 90);
    row.p99_us = percentile(&lat, 99);
    row.max_us = lat.last().copied().unwrap_or(0);
    row
}

/// Per-(level, client) seed: reproducible mix, distinct per thread.
fn mix_seed(level: u64, client: u64) -> u64 {
    0x5eed_0ff0 ^ (level << 16) ^ client
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let quick = opts.scale == Scale::Quick;
    // Requests per concurrency level; levels are fixed so the committed
    // trajectory always has the same row keys.
    let per_level = match opts.scale {
        Scale::Quick => 200,
        Scale::Default => 5_000,
        Scale::Full => 50_000,
    };
    let levels = [1usize, 2, 4, 8];

    // The production daemon serves with telemetry enabled (metrics requests
    // need counters to render); the load run mirrors that so the measured
    // cost includes the instrumentation the real service pays.
    fcn_telemetry::global().set_enabled(true);

    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        // Above the deepest level (8 closed-loop clients) so admission
        // never rejects: this bench measures service time, not shedding.
        max_inflight: 16,
        default_deadline_ms: 0,
        poll_interval_ms: 5,
    };
    let server = Arc::new(Server::bind(config, CliHandler::new()).expect("bind in-process daemon"));
    let addr = server
        .local_addr()
        .expect("resolve in-process daemon address")
        .to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let runner = {
        let server = Arc::clone(&server);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || server.run(&shutdown))
    };

    banner("fcn-serve closed-loop trajectory (in-process daemon, real TCP)");
    println!(
        "daemon at {addr}; {} requests/level over levels {levels:?}\n",
        per_level
    );
    println!(
        "{:>8} {:>9} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "clients", "requests", "errors", "thrpt r/s", "mean µs", "p50", "p90", "p99", "max"
    );
    let mut rows: Vec<Row> = Vec::new();
    for &clients in &levels {
        let row = run_level(&addr, clients, per_level);
        println!(
            "{:>8} {:>9} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9} {:>9}",
            row.clients,
            row.requests,
            row.errors,
            fmt(row.throughput_rps),
            fmt(row.mean_us),
            row.p50_us,
            row.p90_us,
            row.p99_us,
            row.max_us
        );
        rows.push(row);
    }

    // Cold vs warm: a family no load level touches (mesh2 n=1024), so the
    // first request pays the registry compile and the repeat does not.
    banner("cold vs warm registry (beta mesh2 1024)");
    let mut probe = Client::connect(&addr).expect("connect cold/warm probe");
    let cold_args = ["mesh2", "1024", "--trials", "1"];
    let t = now();
    let cold_resp = probe.call("beta", &cold_args).expect("cold beta reply");
    let cold_us = t.elapsed().as_micros() as u64;
    let t = now();
    let warm_resp = probe.call("beta", &cold_args).expect("warm beta reply");
    let warm_us = t.elapsed().as_micros() as u64;
    assert!(
        cold_resp.ok && warm_resp.ok,
        "cold/warm probes must succeed"
    );
    assert_eq!(
        cold_resp.output, warm_resp.output,
        "warm registry must not change the answer"
    );
    let mut cw = Row::blank("cold-vs-warm".to_string(), "beta");
    cw.clients = 1;
    cw.requests = 2;
    cw.cold_us = cold_us;
    cw.warm_us = warm_us;
    cw.warm_speedup = cold_us as f64 / warm_us.max(1) as f64;
    println!(
        "cold {} µs  warm {} µs  speedup {}×",
        cold_us,
        warm_us,
        fmt(cw.warm_speedup)
    );
    rows.push(cw);

    // ordering: Release pairs with the accept loop's Acquire-side poll of
    // the shutdown flag; everything the clients did happens-before drain.
    shutdown.store(true, Ordering::Release);
    runner
        .join()
        .expect("daemon runner thread")
        .expect("daemon drained cleanly");

    let path = write_records("serve", &rows).expect("write serve records");
    println!("\nrecords: {}", path.display());

    // The committed trajectory (or its quick shadow), merged under the same
    // schema-validated discipline as BENCH_faults.json.
    let curve_path = if quick {
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_serve.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_serve.json")
    };
    let existing = match std::fs::read_to_string(&curve_path) {
        Ok(body) => match fcn_bench::validate_rows(&body, SERVE_SCHEMA) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "error: existing {} is not mergeable: {e}",
                    curve_path.display()
                );
                std::process::exit(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let fresh: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            let line = serde_json::to_string(r).expect("row serializes");
            (r.bench.clone(), line)
        })
        .collect();
    let body = fcn_bench::merge_bench_rows(&existing, &fresh);
    if let Err(e) = std::fs::write(&curve_path, body) {
        eprintln!("error: cannot write {}: {e}", curve_path.display());
        std::process::exit(2);
    }
    println!("wrote {} rows to {}", rows.len(), curve_path.display());
}
