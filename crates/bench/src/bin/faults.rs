//! `faults` — regenerate the degraded-β example curves: how the measured
//! bandwidth of a strongly-connected host (mesh2) and a hypercubic host
//! (butterfly) decays under the deterministic fault plane.
//!
//! For each machine and fault rate, runs the full `trials × multipliers`
//! estimator grid against a seeded [`fcn_faults::FaultPlan`], reports the
//! β-vs-fault-rate curve, and records rows:
//!
//! * default: writes `BENCH_faults.json` at the repo root — the committed
//!   example curve referenced by README and EXPERIMENTS.md;
//! * `--quick`: CI smoke scale, writes `target/BENCH_faults.quick.json` so
//!   a smoke run never clobbers the committed numbers.
//!
//! Rows are schema-tagged ([`fcn_bench::FAULTS_SCHEMA`]) and merged through
//! the same line-numbered validation as `perfbench`'s trajectory file. All
//! output is bit-identical for every `--jobs` value.

use fcn_bandwidth::{DegradedPoint, DegradedSweep};
use fcn_bench::{banner, fmt, write_records, RunOpts, Scale, FAULTS_SCHEMA};
use fcn_topology::Machine;
use serde::Serialize;

/// One recorded point of a degraded-β curve (see EXPERIMENTS.md).
#[derive(Debug, Serialize)]
struct Row {
    /// Row-format version ([`FAULTS_SCHEMA`]).
    schema: String,
    /// Row key: `<machine>@<fault-rate>`.
    bench: String,
    /// Machine the curve was measured on.
    machine: String,
    /// Processor count.
    n: usize,
    /// Fault rate the plan was generated at.
    fault_rate: f64,
    /// Best plateau rate across trials (β̂ of the degraded host).
    rate: f64,
    /// Mean of per-trial plateau rates.
    mean_rate: f64,
    /// Fraction of issued demands that were deliverable.
    delivery_fraction: f64,
    /// Processors killed by the plan.
    dead_nodes: usize,
    /// Links killed by the plan.
    dead_links: usize,
    /// Transient outage windows.
    outages: usize,
    /// Packets stranded at injection across all cells.
    stranded: usize,
    /// Unreachable demands across all cells.
    unreachable: usize,
    /// Successful BFS replans across all cells.
    replans: u64,
    /// Cells that hit the tick budget.
    aborted_cells: usize,
}

impl Row {
    fn new(machine: &Machine, p: &DegradedPoint) -> Row {
        Row {
            schema: FAULTS_SCHEMA.to_string(),
            bench: format!("{}@{:.3}", machine.name(), p.fault_rate),
            machine: machine.name().to_string(),
            n: machine.processors(),
            fault_rate: p.fault_rate,
            rate: p.rate,
            mean_rate: p.mean_rate,
            delivery_fraction: p.delivery_fraction(),
            dead_nodes: p.dead_nodes,
            dead_links: p.dead_links,
            outages: p.outages,
            stranded: p.stranded,
            unreachable: p.unreachable,
            replans: p.replans,
            aborted_cells: p.aborted_cells,
        }
    }
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let quick = opts.scale == Scale::Quick;
    let fault_rates = match opts.scale {
        Scale::Quick => vec![0.0, 0.05, 0.10],
        Scale::Default => vec![0.0, 0.02, 0.05, 0.10, 0.20],
        Scale::Full => vec![0.0, 0.02, 0.05, 0.10, 0.20, 0.30],
    };
    let machines = if quick {
        vec![Machine::mesh(2, 8), Machine::butterfly(3)]
    } else {
        vec![Machine::mesh(2, 16), Machine::butterfly(4)]
    };
    let sweep = DegradedSweep {
        fault_rates,
        multipliers: opts.scale.multipliers(),
        trials: opts.scale.trials(),
        jobs: opts.jobs,
        ..Default::default()
    };

    banner("degraded β: delivery rate vs fault rate (deterministic fault plane)");
    let mut rows: Vec<Row> = Vec::new();
    for machine in &machines {
        println!(
            "\n{} (n = {}), fault seed {:#x}:",
            machine.name(),
            machine.processors(),
            sweep.fault_seed
        );
        println!(
            "{:>6} {:>10} {:>10} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7}",
            "rate",
            "β̂",
            "mean",
            "deliver",
            "dead-n",
            "dead-l",
            "outages",
            "strand",
            "unreach",
            "replans",
            "aborts"
        );
        for p in sweep.sweep_symmetric(machine) {
            println!(
                "{:>6.3} {:>10} {:>10} {:>8.1}% {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7}",
                p.fault_rate,
                fmt(p.rate),
                fmt(p.mean_rate),
                100.0 * p.delivery_fraction(),
                p.dead_nodes,
                p.dead_links,
                p.outages,
                p.stranded,
                p.unreachable,
                p.replans,
                p.aborted_cells
            );
            rows.push(Row::new(machine, &p));
        }
    }

    let path = write_records("faults", &rows).expect("write faults records");
    println!("\nrecords: {}", path.display());

    // The committed curve (or its quick shadow), merged under the same
    // schema-validated discipline as BENCH_router.json.
    let curve_path = if quick {
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_faults.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_faults.json")
    };
    let existing = match std::fs::read_to_string(&curve_path) {
        Ok(body) => match fcn_bench::validate_rows(&body, FAULTS_SCHEMA) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "error: existing {} is not mergeable: {e}",
                    curve_path.display()
                );
                std::process::exit(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let fresh: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            let line = serde_json::to_string(r).expect("row serializes");
            (r.bench.clone(), line)
        })
        .collect();
    let body = fcn_bench::merge_bench_rows(&existing, &fresh);
    if let Err(e) = std::fs::write(&curve_path, body) {
        eprintln!("error: cannot write {}: {e}", curve_path.display());
        std::process::exit(2);
    }
    println!("wrote {} rows to {}", rows.len(), curve_path.display());
}
