//! Ablation E-X3: redundant vs non-redundant emulation.
//!
//! The lower bound must survive the *redundant* model because redundancy
//! genuinely helps: a block emulation with halo width `w` amortizes host
//! distance over `w` guest steps at a bounded work-inefficiency cost. This
//! ablation emulates a 2-d mesh guest on hosts with growing distance (mesh,
//! X-tree, tree) under w ∈ {1, 2, 4, 8} and reports communication slowdown
//! per guest step and the inefficiency factor.

use fcn_bench::{banner, fmt, write_records, Scale};
use fcn_core::{block_mesh_emulation, direct_emulation, EmulationConfig};
use fcn_topology::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    host: String,
    strategy: String,
    halo_w: u32,
    comm_slowdown_per_step: f64,
    total_slowdown: f64,
    work_ratio: f64,
}

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let guest_side = if scale == Scale::Quick { 32 } else { 64 };
    let guest = Machine::mesh(2, guest_side);
    // 16-processor hosts: a mesh (short distances), and a tree-shaped host
    // (Θ(lg m) distances) built as a custom machine over the tree graph.
    let hosts: Vec<Machine> = vec![
        Machine::mesh(2, 4),
        Machine::custom(
            fcn_topology::Family::Tree,
            "tree_host(16 procs)".into(),
            Machine::tree(4).graph().clone(),
            16,
            fcn_topology::SendCapacity::Unlimited,
            vec![],
        ),
    ];
    let cfg = EmulationConfig::default();
    let steps = 8u64;

    banner("Redundancy ablation: mesh2 guest, 16-processor hosts");
    let mut rows = Vec::new();
    for host in &hosts {
        println!("\nhost {}:", host.name());
        let direct = direct_emulation(&guest, host, steps, &cfg);
        println!(
            "  direct        comm/step {:>10}  total slowdown {:>10}  work x{}",
            fmt(direct.communication_slowdown()),
            fmt(direct.slowdown()),
            fmt(direct.work_ratio)
        );
        rows.push(Row {
            host: host.name().to_string(),
            strategy: "direct".into(),
            halo_w: 0,
            comm_slowdown_per_step: direct.communication_slowdown(),
            total_slowdown: direct.slowdown(),
            work_ratio: direct.work_ratio,
        });
        for w in [1u32, 2, 4, 8] {
            let r = block_mesh_emulation(2, guest_side, host, w, steps.max(w as u64), &cfg);
            println!(
                "  block w={w:<2}    comm/step {:>10}  total slowdown {:>10}  work x{}",
                fmt(r.communication_slowdown()),
                fmt(r.slowdown()),
                fmt(r.work_ratio)
            );
            rows.push(Row {
                host: host.name().to_string(),
                strategy: "block".into(),
                halo_w: w,
                comm_slowdown_per_step: r.communication_slowdown(),
                total_slowdown: r.slowdown(),
                work_ratio: r.work_ratio,
            });
        }
    }
    println!(
        "\ninterpretation: on the tree host, increasing w amortizes the Θ(lg m) \
         distance (comm/step falls) while work stays within a constant — the \
         redundant regime the lower bound is proven against."
    );

    let path = write_records("ablation_redundancy", &rows).expect("write records");
    println!("records: {}", path.display());
}
