//! Regenerate Figure 1: communication-induced vs load-induced slowdown.
//!
//! The analytic curves for the introduction's pair (de Bruijn guest, 2-d
//! mesh host) at several guest sizes, plus measured direct-emulation
//! slowdowns on small concrete hosts overlaid against the predicted lower
//! bound.

use fcn_bandwidth::BandwidthEstimator;
use fcn_bench::{banner, fmt, write_records, RunOpts, Scale};
use fcn_core::{empirical_host_size, fig1_data, fig1_measured, EmulationConfig};
use fcn_topology::{Family, Machine};

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;

    banner("Figure 1 analytic curves: de Bruijn guest on 2-d mesh hosts");
    let mut datasets = Vec::new();
    for lgn in [14u32, 17, 20] {
        let n = (1u64 << lgn) as f64;
        let d = fig1_data(&Family::DeBruijn, &Family::Mesh(2), n, 24);
        println!(
            "n = 2^{lgn}: crossover at m* = {:.1} (lg²n = {:.1}), min slowdown = {}",
            d.crossover_m,
            (lgn * lgn) as f64,
            fmt(d.crossover_slowdown)
        );
        println!("  {:>12} {:>14} {:>14}", "m", "load n/m", "comm β_G/β_H");
        for p in d.points.iter().step_by(4) {
            println!(
                "  {:>12.1} {:>14} {:>14}",
                p.m,
                fmt(p.load_bound),
                fmt(p.comm_bound)
            );
        }
        datasets.push(d);
    }

    banner("measured direct-emulation slowdowns (small sizes)");
    let guest = Machine::de_bruijn(if scale == Scale::Quick { 7 } else { 9 });
    let host_sizes: Vec<usize> = if scale == Scale::Quick {
        vec![4, 9, 16]
    } else {
        vec![4, 9, 16, 36, 64]
    };
    let cfg = EmulationConfig::default();
    let rows = fig1_measured(&guest, &Family::Mesh(2), &host_sizes, 8, &cfg);
    println!("guest {} (n = {}):", guest.name(), guest.processors());
    println!(
        "  {:>6} {:>18} {:>18} {:>8}",
        "m", "measured slowdown", "predicted bound", "ratio"
    );
    for r in &rows {
        println!(
            "  {:>6} {:>18} {:>18} {:>8}",
            r.m,
            fmt(r.measured_slowdown),
            fmt(r.predicted_lower_bound),
            fmt(r.measured_slowdown / r.predicted_lower_bound)
        );
    }

    banner("empirical crossover (measured β̂ on both sides)");
    // Measure mesh-host bandwidths at several sizes, then solve the
    // crossover from the data alone — closing the loop between the
    // measured Table 4 and the derived Figure 1.
    let est = BandwidthEstimator {
        multipliers: scale.multipliers(),
        trials: scale.trials(),
        jobs: opts.jobs,
        ..Default::default()
    };
    let host_samples: Vec<(f64, f64)> = [4usize, 6, 8, 12, 16, 24]
        .iter()
        .map(|&side| {
            let h = Machine::mesh(2, side);
            (h.processors() as f64, est.estimate_symmetric(&h).rate)
        })
        .collect();
    let guest_beta = est.estimate_symmetric(&guest).rate;
    let n = guest.processors() as f64;
    let m_emp = empirical_host_size(guest_beta, n, &host_samples);
    let lg2 = n.log2().powi(2);
    println!(
        "guest {} (β̂ = {:.1}): empirical m* = {:.1}  (analytic lg²n = {:.1}, \
         ratio {:.2})",
        guest.name(),
        guest_beta,
        m_emp,
        lg2,
        m_emp / lg2
    );

    let path = write_records("fig1", &datasets).expect("write records");
    let path2 = write_records("fig1_measured", &rows).expect("write records");
    println!("\nrecords: {} and {}", path.display(), path2.display());
}
