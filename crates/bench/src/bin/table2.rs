//! Regenerate Table 2: maximum host sizes for efficient emulation of
//! j-dimensional Mesh-of-Trees, Multigrids, and Pyramids.
//!
//! Theorems 3 and 4 differ in the required guest time (`T ≥ Ω(|G|^{1/j})`
//! vs `T ≥ Ω(lg|G|)`); the bound itself comes from the same β ratio, so the
//! cells match Table 1's for equal dimensions. We print both time premises.

use fcn_bench::{banner, write_records};
use fcn_core::{generate_table, table2_spec};
use fcn_topology::Family;

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let table = generate_table(table2_spec(&[1, 2, 3]), &scale.table_guest_sizes());
    banner("Table 2 (symbolic cells re-derived from the Efficient Emulation Theorem)");
    print!("{}", table.render());

    banner("guest-time premises (Theorem 4 uses T = Ω(λ(G)) = Ω(lg |G|))");
    for j in [1u8, 2, 3] {
        for fam in [
            Family::MeshOfTrees(j),
            Family::Multigrid(j),
            Family::Pyramid(j),
        ] {
            println!(
                "{:<18} λ = {} (minimal efficient-emulation guest time)",
                fam.id(),
                fam.lambda().theta_string()
            );
        }
    }
    let path = write_records("table2", &table.cells).expect("write records");
    println!("\nrecords: {}", path.display());
}
