#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-bench
//!
//! Shared infrastructure for the table/figure regeneration binaries and the
//! Criterion micro-benchmarks.
//!
//! Each regeneration binary (`table1`..`table4`, `fig1`, `fig2`,
//! `ablation_*`, `repro-all`) prints a human-readable report to stdout and
//! appends machine-readable JSON-lines records under `target/repro/`, so
//! EXPERIMENTS.md's paper-vs-measured claims stay checkable.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use serde::Serialize;

pub mod validate;

pub use validate::{
    merge_bench_rows, validate_bench_rows, validate_rows, validate_serve_rows, FAULTS_SCHEMA,
    PERFBENCH_SCHEMA, SERVE_SCHEMA,
};

/// Scale of a reproduction run, from the command line (`--quick` /
/// `--full`; default is a balanced middle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest grids (CI-friendly; `--quick`).
    Quick,
    /// Balanced middle (no flag).
    Default,
    /// Paper-scale grids (`--full`).
    Full,
}

/// Parsed command-line options shared by all regeneration binaries:
/// `[--quick|--full] [--jobs N] [--metrics-out PATH]`.
///
/// `jobs` is the worker-thread count for the measurement grids; `1` is
/// sequential, `0` means one worker per hardware thread. Every grid cell
/// derives its seeds from its index ([`fcn_exec::job_seed`]), so the output
/// is bit-identical for every `jobs` value — the flag only changes the wall
/// clock. `metrics_out` enables the global [`fcn_telemetry`] registry for
/// the run and writes a JSONL snapshot on exit (see [`telemetry`]); it
/// never changes a record either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOpts {
    /// Grid scale selected by `--quick`/`--full`.
    pub scale: Scale,
    /// Worker threads (`--jobs N`; 0 = auto, 1 = sequential).
    pub jobs: usize,
    /// `--metrics-out PATH`: enable telemetry and write a snapshot there.
    pub metrics_out: Option<String>,
}

impl RunOpts {
    /// Parse from `std::env::args()`. Accepts `--jobs N` / `--jobs=N` and
    /// `--metrics-out PATH` / `--metrics-out=PATH`.
    pub fn from_args() -> RunOpts {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument stream (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> RunOpts {
        let mut opts = RunOpts {
            scale: Scale::Default,
            jobs: 1,
            metrics_out: None,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(jobs) => opts.jobs = jobs,
                    None => eprintln!("--jobs expects a number; keeping jobs={}", opts.jobs),
                },
                "--metrics-out" => match it.next() {
                    Some(path) => opts.metrics_out = Some(path),
                    None => eprintln!("--metrics-out expects a path; telemetry stays off"),
                },
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        match v.parse() {
                            Ok(jobs) => opts.jobs = jobs,
                            Err(_) => {
                                eprintln!("--jobs expects a number; keeping jobs={}", opts.jobs)
                            }
                        }
                    } else if let Some(v) = other.strip_prefix("--metrics-out=") {
                        opts.metrics_out = Some(v.to_string());
                    } else {
                        eprintln!("ignoring unknown argument {other:?}");
                    }
                }
            }
        }
        opts
    }
}

/// Scope guard for a bench binary's `--metrics-out` run: enables the global
/// registry at creation and writes the delta snapshot when dropped.
#[derive(Debug)]
pub struct TelemetryGuard {
    path: String,
    baseline: fcn_telemetry::MetricsSnapshot,
}

/// Start telemetry for this run if `--metrics-out` was given. Bind the
/// result for the whole `main` body:
///
/// ```ignore
/// let opts = RunOpts::from_args();
/// let _tele = fcn_bench::telemetry(&opts);
/// ```
pub fn telemetry(opts: &RunOpts) -> Option<TelemetryGuard> {
    let path = opts.metrics_out.clone()?;
    let reg = fcn_telemetry::global();
    let baseline = reg.snapshot();
    reg.set_enabled(true);
    Some(TelemetryGuard { path, baseline })
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        let reg = fcn_telemetry::global();
        fcn_telemetry::flush_thread_shard(reg);
        reg.set_enabled(false);
        let delta = reg.snapshot().delta_since(&self.baseline);
        match fs::write(&self.path, delta.to_jsonl()) {
            Ok(()) => eprintln!("metrics snapshot written to {}", self.path),
            Err(e) => eprintln!("cannot write metrics to {:?}: {e}", self.path),
        }
    }
}

impl Scale {
    /// Parse from `std::env::args()` (understands and ignores `--jobs`, so
    /// `repro-all` can forward one argument list to every binary).
    pub fn from_args() -> Scale {
        RunOpts::from_args().scale
    }

    /// Machine-size targets for bandwidth sweeps. The span matters more
    /// than the count: `lg n` and `n^{1/4}` only separate over a wide range.
    pub fn sweep_targets(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![64, 256, 1024],
            Scale::Default => vec![64, 128, 256, 512, 1024, 2048],
            Scale::Full => vec![64, 128, 256, 512, 1024, 2048, 4096, 8192],
        }
    }

    /// Guest sizes for the host-size tables' numeric columns.
    pub fn table_guest_sizes(&self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![1 << 12, 1 << 16],
            Scale::Default => vec![1 << 12, 1 << 16, 1 << 20],
            Scale::Full => vec![1 << 12, 1 << 16, 1 << 20, 1 << 24],
        }
    }

    /// Independent trials for operational estimates.
    pub fn trials(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Default => 3,
            Scale::Full => 4,
        }
    }

    /// Saturation multipliers.
    pub fn multipliers(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4],
            Scale::Default => vec![2, 4, 8],
            Scale::Full => vec![2, 4, 8, 16],
        }
    }
}

/// Where JSON-lines records land.
pub fn repro_dir() -> PathBuf {
    // target/ of the workspace; CARGO_TARGET_DIR respected when set.
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    base.join("repro")
}

/// Append serialized records to `target/repro/<name>.jsonl` (created fresh
/// on each run).
pub fn write_records<T: Serialize>(name: &str, records: &[T]) -> std::io::Result<PathBuf> {
    let dir = repro_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = fs::File::create(&path)?;
    for r in records {
        let line = serde_json::to_string(r)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writeln!(f, "{line}")?;
    }
    Ok(path)
}

/// Print a section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a floating value compactly for report tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(Scale::Quick.sweep_targets().len() < Scale::Full.sweep_targets().len());
        assert!(Scale::Quick.trials() <= Scale::Full.trials());
    }

    #[test]
    fn run_opts_parse() {
        let o = RunOpts::parse_from(["--full", "--jobs", "4"].into_iter().map(String::from));
        assert_eq!(
            o,
            RunOpts {
                scale: Scale::Full,
                jobs: 4,
                metrics_out: None,
            }
        );
        let o = RunOpts::parse_from(["--jobs=0", "--quick"].into_iter().map(String::from));
        assert_eq!(
            o,
            RunOpts {
                scale: Scale::Quick,
                jobs: 0,
                metrics_out: None,
            }
        );
        let o = RunOpts::parse_from(std::iter::empty());
        assert_eq!(
            o,
            RunOpts {
                scale: Scale::Default,
                jobs: 1,
                metrics_out: None,
            }
        );
        let o = RunOpts::parse_from(["--metrics-out=m.jsonl"].into_iter().map(String::from));
        assert_eq!(o.metrics_out.as_deref(), Some("m.jsonl"));
        let o = RunOpts::parse_from(
            ["--metrics-out", "m2.jsonl", "--full"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.metrics_out.as_deref(), Some("m2.jsonl"));
        assert_eq!(o.scale, Scale::Full);
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(2.46813), "2.468");
        assert!(fmt(123456.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
    }

    #[test]
    fn write_records_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        let p = write_records("test_records", &[R { x: 1 }, R { x: 2 }]).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("{\"x\":1}"));
    }
}
