//! # fcn-bench
//!
//! Shared infrastructure for the table/figure regeneration binaries and the
//! Criterion micro-benchmarks.
//!
//! Each regeneration binary (`table1`..`table4`, `fig1`, `fig2`,
//! `ablation_*`, `repro-all`) prints a human-readable report to stdout and
//! appends machine-readable JSON-lines records under `target/repro/`, so
//! EXPERIMENTS.md's paper-vs-measured claims stay checkable.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use serde::Serialize;

/// Scale of a reproduction run, from the command line (`--quick` /
/// `--full`; default is a balanced middle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Default,
    Full,
}

/// Parsed command-line options shared by all regeneration binaries:
/// `[--quick|--full] [--jobs N]`.
///
/// `jobs` is the worker-thread count for the measurement grids; `1` is
/// sequential, `0` means one worker per hardware thread. Every grid cell
/// derives its seeds from its index ([`fcn_exec::job_seed`]), so the output
/// is bit-identical for every `jobs` value — the flag only changes the wall
/// clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    pub scale: Scale,
    pub jobs: usize,
}

impl RunOpts {
    /// Parse from `std::env::args()`. Accepts `--jobs N` and `--jobs=N`.
    pub fn from_args() -> RunOpts {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument stream (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> RunOpts {
        let mut opts = RunOpts {
            scale: Scale::Default,
            jobs: 1,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(jobs) => opts.jobs = jobs,
                    None => eprintln!("--jobs expects a number; keeping jobs={}", opts.jobs),
                },
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        match v.parse() {
                            Ok(jobs) => opts.jobs = jobs,
                            Err(_) => {
                                eprintln!("--jobs expects a number; keeping jobs={}", opts.jobs)
                            }
                        }
                    } else {
                        eprintln!("ignoring unknown argument {other:?}");
                    }
                }
            }
        }
        opts
    }
}

impl Scale {
    /// Parse from `std::env::args()` (understands and ignores `--jobs`, so
    /// `repro-all` can forward one argument list to every binary).
    pub fn from_args() -> Scale {
        RunOpts::from_args().scale
    }

    /// Machine-size targets for bandwidth sweeps. The span matters more
    /// than the count: `lg n` and `n^{1/4}` only separate over a wide range.
    pub fn sweep_targets(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![64, 256, 1024],
            Scale::Default => vec![64, 128, 256, 512, 1024, 2048],
            Scale::Full => vec![64, 128, 256, 512, 1024, 2048, 4096, 8192],
        }
    }

    /// Guest sizes for the host-size tables' numeric columns.
    pub fn table_guest_sizes(&self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![1 << 12, 1 << 16],
            Scale::Default => vec![1 << 12, 1 << 16, 1 << 20],
            Scale::Full => vec![1 << 12, 1 << 16, 1 << 20, 1 << 24],
        }
    }

    /// Independent trials for operational estimates.
    pub fn trials(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Default => 3,
            Scale::Full => 4,
        }
    }

    /// Saturation multipliers.
    pub fn multipliers(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4],
            Scale::Default => vec![2, 4, 8],
            Scale::Full => vec![2, 4, 8, 16],
        }
    }
}

/// Where JSON-lines records land.
pub fn repro_dir() -> PathBuf {
    // target/ of the workspace; CARGO_TARGET_DIR respected when set.
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    base.join("repro")
}

/// Append serialized records to `target/repro/<name>.jsonl` (created fresh
/// on each run).
pub fn write_records<T: Serialize>(name: &str, records: &[T]) -> std::io::Result<PathBuf> {
    let dir = repro_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = fs::File::create(&path)?;
    for r in records {
        let line = serde_json::to_string(r).expect("record serializes");
        writeln!(f, "{line}")?;
    }
    Ok(path)
}

/// Print a section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a floating value compactly for report tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(Scale::Quick.sweep_targets().len() < Scale::Full.sweep_targets().len());
        assert!(Scale::Quick.trials() <= Scale::Full.trials());
    }

    #[test]
    fn run_opts_parse() {
        let o = RunOpts::parse_from(["--full", "--jobs", "4"].into_iter().map(String::from));
        assert_eq!(
            o,
            RunOpts {
                scale: Scale::Full,
                jobs: 4
            }
        );
        let o = RunOpts::parse_from(["--jobs=0", "--quick"].into_iter().map(String::from));
        assert_eq!(
            o,
            RunOpts {
                scale: Scale::Quick,
                jobs: 0
            }
        );
        let o = RunOpts::parse_from(std::iter::empty());
        assert_eq!(
            o,
            RunOpts {
                scale: Scale::Default,
                jobs: 1
            }
        );
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(2.46813), "2.468");
        assert!(fmt(123456.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
    }

    #[test]
    fn write_records_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        let p = write_records("test_records", &[R { x: 1 }, R { x: 2 }]).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("{\"x\":1}"));
    }
}
