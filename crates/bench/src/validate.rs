//! Shared JSONL validation and merge discipline for every committed BENCH
//! trajectory file.
//!
//! Three binaries commit line-oriented JSON benchmark files at the repo root
//! — `perfbench` (`BENCH_router.json`), `faults` (`BENCH_faults.json`), and
//! `fcn-serve-load` (`BENCH_serve.json`) — and all of them share one rule:
//! an existing file is validated *before* any fresh rows are merged into it,
//! a bad line is reported with its 1-based line number and a recovery hint,
//! and the binary exits with code 2 rather than clobbering the committed
//! history. This module is the single home of that discipline; the binaries
//! only differ in the schema tag they expect.

/// Schema tag stamped on every `perfbench` row (the `schema` field of each
/// JSON line in `BENCH_router.json`).
///
/// History: `fcn-perfbench/1` rows had no `schema` field at all, which let a
/// binary silently mix rows measured under different field semantics into one
/// file. Version 2 stamps every row and [`validate_bench_rows`] refuses to
/// merge with a file whose rows carry a missing or different tag. Version 3
/// adds the `unit` field (what the `rate` column measures — enforced by
/// [`validate_bench_rows`], so a row can never be misread across benches
/// whose `rate` semantics differ) and the `cores` field (hardware threads of
/// the measuring host, so throughput rows are comparable across runners).
pub const PERFBENCH_SCHEMA: &str = "fcn-perfbench/3";

/// Schema tag stamped on every `faults` degraded-β row (the committed
/// `BENCH_faults.json` curve).
pub const FAULTS_SCHEMA: &str = "fcn-faults-curve/1";

/// Schema tag stamped on every `fcn-serve-load` row (the committed
/// `BENCH_serve.json` throughput/latency trajectory, including the
/// cold-vs-warm comparison row).
///
/// History: `fcn-serve-curve/1` rows measured only the clean closed-loop
/// curve. Version 2 adds three resilience columns to every row —
/// `chaos_rate` (the uniform wire-fault rate the daemon injected, 0 for
/// clean rows), `offered_load` (offered-to-capacity ratio of the open-loop
/// shed rows, 0 for closed-loop rows), and `shed_fraction` (requests shed
/// typed `Overloaded` as a fraction of requests offered) — enforced by
/// [`validate_serve_rows`].
pub const SERVE_SCHEMA: &str = "fcn-serve-curve/2";

/// Parse and validate an existing `BENCH_serve.json` body before merging
/// new rows into it: the generic [`validate_rows`] checks plus the `/2`
/// resilience columns (`chaos_rate`, `offered_load`, `shed_fraction`),
/// each required and numeric, reported with the offending row's bench id.
pub fn validate_serve_rows(body: &str) -> Result<Vec<(String, String)>, String> {
    let rows = validate_rows(body, SERVE_SCHEMA)?;
    for (bench, line) in &rows {
        let v: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("serve row {bench:?}: not valid JSON: {e}"))?;
        for field in ["chaos_rate", "offered_load", "shed_fraction"] {
            match serde::value_field(&v, field) {
                Ok(serde::Value::Int(_) | serde::Value::UInt(_) | serde::Value::Float(_)) => {}
                _ => {
                    return Err(format!(
                        "serve row {bench:?}: missing or non-numeric `{field}` field \
                         (required by {SERVE_SCHEMA}); delete the file and re-run \
                         fcn-serve-load to regenerate"
                    ))
                }
            }
        }
    }
    Ok(rows)
}

/// Parse and validate an existing `BENCH_router.json` body before merging
/// new rows into it.
///
/// Every non-empty line must be a JSON object whose `schema` field equals
/// [`PERFBENCH_SCHEMA`], whose `bench` field is a string (the row key), and
/// whose `unit` field is a non-empty string naming what the `rate` column
/// measures. Returns `(bench_id, raw_line)` pairs in file order, or a
/// message naming the offending line and how to recover.
pub fn validate_bench_rows(body: &str) -> Result<Vec<(String, String)>, String> {
    let rows = validate_rows(body, PERFBENCH_SCHEMA)?;
    for (bench, line) in &rows {
        let v: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("bench row {bench:?}: not valid JSON: {e}"))?;
        match serde::value_field(&v, "unit") {
            Ok(serde::Value::String(u)) if !u.is_empty() => {}
            _ => {
                return Err(format!(
                    "bench row {bench:?}: missing or empty `unit` field (required by \
                     {PERFBENCH_SCHEMA}); delete the file and re-run the binary at full \
                     scale to regenerate"
                ))
            }
        }
    }
    Ok(rows)
}

/// [`validate_bench_rows`] generalized over the expected schema tag, so the
/// `faults` curve and `serve` trajectory files share the same line-numbered
/// validation discipline as the perfbench trajectory.
pub fn validate_rows(body: &str, expected_schema: &str) -> Result<Vec<(String, String)>, String> {
    let mut rows = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("bench rows line {lineno}: not valid JSON: {e}"))?;
        let schema = match serde::value_field(&v, "schema") {
            Ok(serde::Value::String(s)) => s.clone(),
            Ok(other) => {
                return Err(format!(
                    "bench rows line {lineno}: `schema` must be a string, found {other:?}"
                ))
            }
            Err(_) => {
                return Err(format!(
                    "bench rows line {lineno}: missing `schema` field (pre-{expected_schema} \
                     row); delete the file and re-run the binary at full scale to regenerate"
                ))
            }
        };
        if schema != expected_schema {
            return Err(format!(
                "bench rows line {lineno}: schema {schema:?} does not match this binary's \
                 {expected_schema:?}; delete the file and re-run the binary to regenerate"
            ));
        }
        let bench = match serde::value_field(&v, "bench") {
            Ok(serde::Value::String(s)) => s.clone(),
            _ => {
                return Err(format!(
                    "bench rows line {lineno}: missing or non-string `bench` field"
                ))
            }
        };
        rows.push((bench, line.to_string()));
    }
    Ok(rows)
}

/// Merge freshly measured rows over a validated existing file: a new row
/// replaces the old row with the same bench id (keeping the old position);
/// benches not re-measured this run survive; brand-new benches append in
/// measurement order. Returns the JSONL body to write.
pub fn merge_bench_rows(existing: &[(String, String)], fresh: &[(String, String)]) -> String {
    let mut out: Vec<(String, String)> = Vec::new();
    for (bench, line) in existing {
        let replacement = fresh.iter().find(|(b, _)| b == bench);
        let line = replacement.map(|(_, l)| l).unwrap_or(line);
        out.push((bench.clone(), line.clone()));
    }
    for (bench, line) in fresh {
        if !out.iter().any(|(b, _)| b == bench) {
            out.push((bench.clone(), line.clone()));
        }
    }
    let mut body = String::new();
    for (_, line) in &out {
        body.push_str(line);
        body.push('\n');
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_current_schema_rows() {
        let body = format!(
            "{{\"schema\":\"{PERFBENCH_SCHEMA}\",\"bench\":\"a\",\"median_ms\":1.0,\
             \"unit\":\"packets/tick\"}}\n\
             \n\
             {{\"schema\":\"{PERFBENCH_SCHEMA}\",\"bench\":\"b\",\"median_ms\":2.0,\
             \"unit\":\"ratio\"}}\n"
        );
        let rows = validate_bench_rows(&body).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "a");
        assert_eq!(rows[1].0, "b");
    }

    #[test]
    fn validate_rejects_missing_or_empty_unit() {
        let body = format!("{{\"schema\":\"{PERFBENCH_SCHEMA}\",\"bench\":\"a\"}}\n");
        let err = validate_bench_rows(&body).unwrap_err();
        assert!(err.contains("`unit`"), "{err}");
        assert!(err.contains("\"a\""), "{err}");
        let body = format!("{{\"schema\":\"{PERFBENCH_SCHEMA}\",\"bench\":\"a\",\"unit\":\"\"}}\n");
        let err = validate_bench_rows(&body).unwrap_err();
        assert!(err.contains("`unit`"), "{err}");
        // The faults-curve path stays unit-free: validate_rows is the
        // generic layer and must not inherit the perfbench-only check.
        let body = format!("{{\"schema\":\"{FAULTS_SCHEMA}\",\"bench\":\"mesh2@0.05\"}}\n");
        assert_eq!(validate_rows(&body, FAULTS_SCHEMA).unwrap().len(), 1);
    }

    #[test]
    fn validate_rejects_missing_schema_with_line_number() {
        // The pre-v2 committed format: rows without a schema field.
        let body = "{\"bench\":\"route_reference\",\"median_ms\":155.4}\n";
        let err = validate_bench_rows(body).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("missing `schema`"), "{err}");
        assert!(err.contains("re-run the binary"), "{err}");
    }

    #[test]
    fn validate_rows_is_schema_parameterized() {
        let body = format!("{{\"schema\":\"{FAULTS_SCHEMA}\",\"bench\":\"mesh2@0.05\"}}\n");
        assert_eq!(validate_rows(&body, FAULTS_SCHEMA).unwrap().len(), 1);
        let err = validate_rows(&body, PERFBENCH_SCHEMA).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains(FAULTS_SCHEMA), "{err}");
        // The serve trajectory reuses the same generic layer.
        let body = format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"bench\":\"mix@10000\"}}\n");
        assert_eq!(validate_rows(&body, SERVE_SCHEMA).unwrap().len(), 1);
        let err = validate_rows(&body, FAULTS_SCHEMA).unwrap_err();
        assert!(err.contains(SERVE_SCHEMA), "{err}");
    }

    #[test]
    fn validate_serve_rows_requires_the_v2_resilience_columns() {
        let good = format!(
            "{{\"schema\":\"{SERVE_SCHEMA}\",\"bench\":\"mix@c4\",\"chaos_rate\":0.0,\
             \"offered_load\":0,\"shed_fraction\":0.25}}\n"
        );
        assert_eq!(validate_serve_rows(&good).unwrap().len(), 1);
        // A /1-era row (no resilience columns) is rejected by name.
        let stale = format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"bench\":\"mix@c4\"}}\n");
        let err = validate_serve_rows(&stale).unwrap_err();
        assert!(err.contains("`chaos_rate`"), "{err}");
        assert!(err.contains("mix@c4"), "{err}");
        assert!(err.contains("fcn-serve-load"), "{err}");
        // Non-numeric columns are rejected too.
        let bad = format!(
            "{{\"schema\":\"{SERVE_SCHEMA}\",\"bench\":\"x\",\"chaos_rate\":0,\
             \"offered_load\":\"4x\",\"shed_fraction\":0}}\n"
        );
        let err = validate_serve_rows(&bad).unwrap_err();
        assert!(err.contains("`offered_load`"), "{err}");
        // And the old schema tag itself fails the generic layer with a line
        // number (regeneration hint included).
        let v1 = "{\"schema\":\"fcn-serve-curve/1\",\"bench\":\"mix@c4\"}\n";
        let err = validate_serve_rows(v1).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("fcn-serve-curve/1"), "{err}");
    }

    #[test]
    fn validate_rejects_mismatched_schema_and_garbage() {
        let body = format!(
            "{{\"schema\":\"{PERFBENCH_SCHEMA}\",\"bench\":\"a\"}}\n\
             {{\"schema\":\"fcn-perfbench/1\",\"bench\":\"b\"}}\n"
        );
        let err = validate_bench_rows(&body).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("fcn-perfbench/1"), "{err}");
        let err = validate_bench_rows("not json\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let body = format!("{{\"schema\":\"{PERFBENCH_SCHEMA}\",\"nobench\":1}}\n");
        let err = validate_bench_rows(&body).unwrap_err();
        assert!(err.contains("`bench`"), "{err}");
    }

    #[test]
    fn merge_replaces_in_place_and_appends_new() {
        let existing = vec![
            ("a".to_string(), "old-a".to_string()),
            ("b".to_string(), "old-b".to_string()),
        ];
        let fresh = vec![
            ("b".to_string(), "new-b".to_string()),
            ("c".to_string(), "new-c".to_string()),
        ];
        let body = merge_bench_rows(&existing, &fresh);
        assert_eq!(body, "old-a\nnew-b\nnew-c\n");
        // Empty existing file: fresh rows in measurement order.
        assert_eq!(merge_bench_rows(&[], &fresh), "new-b\nnew-c\n");
    }
}
