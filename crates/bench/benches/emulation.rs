//! Criterion benchmarks for the emulation strategies (Figure 1 / E-X3
//! substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_core::{block_mesh_emulation, direct_emulation, EmulationConfig};
use fcn_topology::Machine;

fn bench_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_emulation");
    group.sample_size(10);
    let guest = Machine::de_bruijn(7);
    for host in [Machine::mesh(2, 3), Machine::mesh(2, 6)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(host.name()),
            &host,
            |b, host| {
                let cfg = EmulationConfig {
                    sample_steps: 1,
                    ..Default::default()
                };
                b.iter(|| direct_emulation(&guest, host, 4, &cfg).host_ticks())
            },
        );
    }
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_emulation");
    group.sample_size(10);
    let host = Machine::mesh(2, 4);
    for w in [1u32, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            let cfg = EmulationConfig {
                sample_steps: 1,
                ..Default::default()
            };
            b.iter(|| block_mesh_emulation(2, 32, &host, w, 8, &cfg).host_ticks())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_direct, bench_block);
criterion_main!(benches);
