//! Criterion benchmarks for the host-size solver (Tables 1–3 machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use fcn_core::{generate_table, max_host_size, numeric_host_size, table3_spec};
use fcn_topology::Family;

fn bench_symbolic(c: &mut Criterion) {
    c.bench_function("symbolic_max_host_size", |b| {
        b.iter(|| {
            let mut cells = 0;
            for guest in [Family::Mesh(3), Family::DeBruijn, Family::Pyramid(2)] {
                for host in [Family::LinearArray, Family::XTree, Family::Mesh(2)] {
                    let _ = max_host_size(&guest, &host);
                    cells += 1;
                }
            }
            cells
        })
    });
}

fn bench_numeric(c: &mut Criterion) {
    c.bench_function("numeric_crossover", |b| {
        b.iter(|| numeric_host_size(&Family::DeBruijn, &Family::Mesh(2), (1u64 << 20) as f64))
    });
}

fn bench_full_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_table3");
    group.sample_size(10);
    group.bench_function("dims_1_2_3", |b| {
        b.iter(|| {
            generate_table(table3_spec(&[1, 2, 3]), &[1 << 16, 1 << 20])
                .cells
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_symbolic, bench_numeric, bench_full_table);
criterion_main!(benches);
