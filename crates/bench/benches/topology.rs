//! Criterion benchmarks for machine construction and graph primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_multigraph::{bfs_distances, diameter};
use fcn_topology::Family;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_machine");
    for family in [
        Family::Mesh(2),
        Family::MeshOfTrees(2),
        Family::Pyramid(2),
        Family::Butterfly,
        Family::DeBruijn,
        Family::Expander,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(family.id()),
            &family,
            |b, family| b.iter(|| family.build_near(4096, 1).node_count()),
        );
    }
    group.finish();
}

fn bench_graph_primitives(c: &mut Criterion) {
    let m = Family::Mesh(2).build_near(4096, 1);
    c.bench_function("bfs_mesh2_4096", |b| {
        b.iter(|| bfs_distances(m.graph(), 0)[m.node_count() - 1])
    });
    let small = Family::DeBruijn.build_near(512, 1);
    c.bench_function("diameter_de_bruijn_512", |b| {
        b.iter(|| diameter(small.graph()))
    });
}

criterion_group!(benches, bench_build, bench_graph_primitives);
criterion_main!(benches);
