//! Criterion benchmarks for bandwidth estimation (E-T4): operational
//! saturation sweeps and flux bound search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_bandwidth::{flux_upper_bound, BandwidthEstimator};
use fcn_topology::Machine;

fn bench_operational(c: &mut Criterion) {
    let mut group = c.benchmark_group("operational_beta");
    group.sample_size(10);
    let est = BandwidthEstimator {
        multipliers: vec![2, 4],
        trials: 2,
        ..Default::default()
    };
    for m in [
        Machine::mesh(2, 8),
        Machine::de_bruijn(6),
        Machine::xtree(5),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| est.estimate_symmetric(m).rate)
        });
    }
    group.finish();
}

fn bench_flux(c: &mut Criterion) {
    let mut group = c.benchmark_group("flux_bound");
    group.sample_size(10);
    for m in [Machine::mesh(2, 16), Machine::butterfly(4)] {
        let t = m.symmetric_traffic();
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| flux_upper_bound(m, &t, 1, 4, 2).rate_bound)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operational, bench_flux);
criterion_main!(benches);
