//! Criterion micro-benchmarks for the packet router (E-T4 substrate):
//! batch routing throughput per machine family and per queue discipline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_routing::{route_batch, PathOracle, QueueDiscipline, RouterConfig, Strategy};
use fcn_topology::Machine;

fn machines() -> Vec<Machine> {
    vec![
        Machine::mesh(2, 16),
        Machine::de_bruijn(8),
        Machine::butterfly(5),
        Machine::tree(7),
    ]
}

fn bench_route_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_batch");
    group.sample_size(10);
    for m in machines() {
        let traffic = m.symmetric_traffic();
        let mut oracle = PathOracle::new(m.graph(), 42);
        let demands: Vec<_> = {
            let rng = oracle.rng();
            (0..4 * traffic.n()).map(|_| traffic.sample(rng)).collect()
        };
        let routes = oracle.routes(&demands, Strategy::ShortestPath);
        group.bench_with_input(
            BenchmarkId::from_parameter(m.name()),
            &routes,
            |b, routes| {
                b.iter(|| {
                    let out = route_batch(&m, routes.clone(), RouterConfig::default());
                    assert!(out.completed);
                    out.ticks
                })
            },
        );
    }
    group.finish();
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_discipline");
    group.sample_size(10);
    let m = Machine::mesh(2, 16);
    let traffic = m.symmetric_traffic();
    let mut oracle = PathOracle::new(m.graph(), 7);
    let demands: Vec<_> = {
        let rng = oracle.rng();
        (0..4 * traffic.n()).map(|_| traffic.sample(rng)).collect()
    };
    let routes = oracle.routes(&demands, Strategy::ShortestPath);
    for d in [
        QueueDiscipline::Fifo,
        QueueDiscipline::FarthestFirst,
        QueueDiscipline::RandomRank,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{d:?}")),
            &d,
            |b, &d| {
                let cfg = RouterConfig {
                    discipline: d,
                    ..Default::default()
                };
                b.iter(|| route_batch(&m, routes.clone(), cfg).ticks)
            },
        );
    }
    group.finish();
}

fn bench_path_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_oracle");
    group.sample_size(10);
    let m = Machine::de_bruijn(9);
    let traffic = m.symmetric_traffic();
    for strategy in [Strategy::ShortestPath, Strategy::Valiant] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut oracle = PathOracle::new(m.graph(), 3);
                    let demands: Vec<_> = {
                        let rng = oracle.rng();
                        (0..2 * traffic.n()).map(|_| traffic.sample(rng)).collect()
                    };
                    oracle.routes(&demands, strategy).len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_route_batch, bench_disciplines, bench_path_oracle);
criterion_main!(benches);
