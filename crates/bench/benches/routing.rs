//! Criterion micro-benchmarks for the packet router (E-T4 substrate):
//! batch routing throughput per machine family and per queue discipline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_routing::engine::reference;
use fcn_routing::{
    measure_rate_with, route_batch, route_compiled, CompiledNet, PacketBatch, PathOracle,
    PlanCache, QueueDiscipline, RouterConfig, RouterScratch, Strategy,
};
use fcn_topology::Machine;

fn machines() -> Vec<Machine> {
    vec![
        Machine::mesh(2, 16),
        Machine::de_bruijn(8),
        Machine::butterfly(5),
        Machine::tree(7),
    ]
}

fn bench_route_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_batch");
    group.sample_size(10);
    for m in machines() {
        let traffic = m.symmetric_traffic();
        let mut oracle = PathOracle::new(m.graph(), 42);
        let demands: Vec<_> = {
            let rng = oracle.rng();
            (0..4 * traffic.n()).map(|_| traffic.sample(rng)).collect()
        };
        let routes = oracle.routes(&demands, Strategy::ShortestPath);
        group.bench_with_input(
            BenchmarkId::from_parameter(m.name()),
            &routes,
            |b, routes| {
                b.iter(|| {
                    let out = route_batch(&m, routes.clone(), RouterConfig::default());
                    assert!(out.completed);
                    out.ticks
                })
            },
        );
    }
    group.finish();
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_discipline");
    group.sample_size(10);
    let m = Machine::mesh(2, 16);
    let traffic = m.symmetric_traffic();
    let mut oracle = PathOracle::new(m.graph(), 7);
    let demands: Vec<_> = {
        let rng = oracle.rng();
        (0..4 * traffic.n()).map(|_| traffic.sample(rng)).collect()
    };
    let routes = oracle.routes(&demands, Strategy::ShortestPath);
    for d in [
        QueueDiscipline::Fifo,
        QueueDiscipline::FarthestFirst,
        QueueDiscipline::RandomRank,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{d:?}")),
            &d,
            |b, &d| {
                let cfg = RouterConfig {
                    discipline: d,
                    ..Default::default()
                };
                b.iter(|| route_batch(&m, routes.clone(), cfg).ticks)
            },
        );
    }
    group.finish();
}

fn bench_path_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_oracle");
    group.sample_size(10);
    let m = Machine::de_bruijn(9);
    let traffic = m.symmetric_traffic();
    for strategy in [Strategy::ShortestPath, Strategy::Valiant] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut oracle = PathOracle::new(m.graph(), 3);
                    let demands: Vec<_> = {
                        let rng = oracle.rng();
                        (0..2 * traffic.n()).map(|_| traffic.sample(rng)).collect()
                    };
                    oracle.routes(&demands, strategy).len()
                })
            },
        );
    }
    group.finish();
}

/// The estimator's inner loop: one trial = growing batches (2n, 4n, 8n
/// messages) that share one plan seed. With a [`PlanCache`] the later
/// batches reuse the BFS trees built by the earlier ones; without it every
/// batch replans from scratch. The gap is the cache's wall-clock win.
/// (Uses a mesh: its routing is BFS-backed. Arithmetic policies like
/// de Bruijn bit-correction compute no trees and ignore the cache.)
fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache_sweep");
    group.sample_size(10);
    let m = Machine::mesh(2, 64);
    let traffic = m.symmetric_traffic();
    let n = traffic.n();
    let sweep = |cache: Option<&PlanCache>| {
        let mut ticks = 0;
        for (cell, mult) in [2usize, 4, 8].iter().enumerate() {
            let s = measure_rate_with(
                &m,
                &traffic,
                mult * n,
                Strategy::ShortestPath,
                RouterConfig::default(),
                fcn_exec::job_seed(11, cell as u64),
                17, // shared per-trial plan seed, as in BandwidthEstimator
                cache,
            );
            ticks += s.ticks;
        }
        ticks
    };
    group.bench_function("uncached", |b| b.iter(|| sweep(None)));
    group.bench_function("cached", |b| {
        b.iter(|| {
            let cache = PlanCache::default();
            sweep(Some(&cache))
        })
    });
    group.finish();
}

/// The compile-once/run-many split at saturation scale: mesh2(64)
/// (n = 4096) under 8n symmetric packets — the heaviest cell of the default
/// estimator sweep. `reference` is the retained pre-compilation simulator
/// (wire arrays rebuilt and every hop binary-searched per call); `compiled`
/// routes a pre-compiled [`PacketBatch`] over a shared [`CompiledNet`] with
/// a reused [`RouterScratch`], exactly as sweeps do. Both produce
/// bit-identical outcomes (`tests/compiled_router.rs`); only the wall clock
/// differs.
fn bench_compiled_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_compile_split");
    group.sample_size(10);
    let m = Machine::mesh(2, 64);
    let traffic = m.symmetric_traffic();
    let mut oracle = PathOracle::new(m.graph(), 42);
    let demands: Vec<_> = {
        let rng = oracle.rng();
        (0..8 * traffic.n()).map(|_| traffic.sample(rng)).collect()
    };
    let routes = oracle.routes(&demands, Strategy::ShortestPath);
    let cfg = RouterConfig::default();
    group.bench_function("reference", |b| {
        b.iter(|| reference::route_batch(&m, routes.clone(), cfg).ticks)
    });
    let net = CompiledNet::compile(&m);
    let batch = PacketBatch::compile(&net, &routes).expect("planner paths are walks");
    let mut scratch = RouterScratch::new();
    group.bench_function("compiled", |b| {
        b.iter(|| route_compiled(&net, &batch, cfg, &mut scratch).ticks)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_route_batch,
    bench_disciplines,
    bench_path_oracle,
    bench_plan_cache,
    bench_compiled_vs_reference
);
criterion_main!(benches);
