//! Criterion benchmarks for circuit construction and the Lemma 9 witness
//! (the Figure 2 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_core::{build_witness, Circuit, Lemma9Config};
use fcn_topology::Machine;

fn bench_circuit_build(c: &mut Criterion) {
    let m = Machine::mesh(2, 8);
    c.bench_function("nonredundant_circuit_mesh64_t32", |b| {
        b.iter(|| Circuit::nonredundant(m.graph(), 32).node_count())
    });
    c.bench_function("redundant_circuit_mesh64_t32", |b| {
        b.iter(|| Circuit::redundant_random(m.graph(), 32, 3, 5).node_count())
    });
}

fn bench_lemma9(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma9_witness");
    group.sample_size(10);
    for m in [
        Machine::ring(16),
        Machine::mesh(2, 5),
        Machine::de_bruijn(4),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| build_witness(m.graph(), Lemma9Config::default()).gamma_edges)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_circuit_build, bench_lemma9);
criterion_main!(benches);
