//! Criterion benchmarks for the algorithm-pattern extension (E-X4) and the
//! steady-state estimator (E-X5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcn_core::{execute_pattern, CommPattern};
use fcn_routing::{saturation_throughput, RouterConfig, SteadyConfig};
use fcn_topology::Machine;

fn bench_pattern_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_execution");
    group.sample_size(10);
    let host = Machine::mesh(2, 6);
    for p in [
        CommPattern::fft(5),
        CommPattern::odd_even_sort(32),
        CommPattern::all_to_all(32),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(&p.name), &p, |b, p| {
            b.iter(|| execute_pattern(p, &host, RouterConfig::default(), 1).ticks_measured)
        });
    }
    group.finish();
}

fn bench_pattern_construction(c: &mut Criterion) {
    c.bench_function("build_fft_pattern_g10", |b| {
        b.iter(|| CommPattern::fft(10).message_count())
    });
    c.bench_function("build_odd_even_n256", |b| {
        b.iter(|| CommPattern::odd_even_sort(256).message_count())
    });
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_saturation");
    group.sample_size(10);
    let cfg = SteadyConfig {
        warmup_ticks: 64,
        measure_ticks: 256,
        ..Default::default()
    };
    for m in [Machine::mesh(2, 8), Machine::de_bruijn(6)] {
        let t = m.symmetric_traffic();
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| saturation_throughput(m, &t, cfg).0)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pattern_execution,
    bench_pattern_construction,
    bench_steady_state
);
criterion_main!(benches);
