//! Phase 2 of the two-phase analysis: cross-file rules over the merged
//! [`FileIndex`] set.
//!
//! * **LOCK-ORDER** — replays each function's event stream against the
//!   declared `lockdep::ranks` table: every `lock_ranked` acquisition made
//!   while other ranked locks are held must strictly increase the rank.
//!   Guard-returning wrappers (`fn lock(&self) -> RankedGuard<…>`) act as
//!   acquisitions at their call sites, calls are inlined one level, and the
//!   resulting acquisition graph is checked for cycles. A condvar wait
//!   while holding more than the waited lock is flagged too.
//! * **TEL-DEAD** — telemetry name constants never recorded anywhere, and
//!   `names::X` references missing from the table.
//! * **SCHEMA-DRIFT** — every `fcn-*/N` tag must carry the same version
//!   everywhere it appears: emitters, validators, and CI gate files.
//! * **BLOCKING-IN-HANDLER** — blocking socket/fs/process calls reachable
//!   from fcn-serve request handlers outside the framed I/O layer.
//! * plus the workspace halves of **SCHEMA-TAG** (duplicate tag literals,
//!   validator presence) and **TEL-NAME** (duplicate metric-name values),
//!   which moved here from the per-file pass.
//!
//! Everything operates on [`FileIndex`] only — never on raw sources — so a
//! cache-hit file participates in cross-file analysis at full fidelity.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::{EventKind, FileIndex, FnItem, Receiver};
use crate::report::Finding;
use crate::rules::SERVE_IO_ALLOWLIST;
use crate::source::FileKind;

/// A function with its owning file, as used during resolution.
#[derive(Clone, Copy)]
struct FnRef<'a> {
    file: &'a FileIndex,
    item: &'a FnItem,
}

/// Resolution tables shared by the lock-order and reachability passes.
struct Resolver<'a> {
    /// `(crate, impl_type, name)` → unique fn (None when ambiguous).
    typed: BTreeMap<(&'a str, &'a str, &'a str), Option<FnRef<'a>>>,
    /// `(crate, name)` → unique fn of any impl (None when ambiguous).
    by_name: BTreeMap<(&'a str, &'a str), Option<FnRef<'a>>>,
}

impl<'a> Resolver<'a> {
    fn build(indexes: &'a [FileIndex]) -> Resolver<'a> {
        let mut typed: BTreeMap<(&str, &str, &str), Option<FnRef<'a>>> = BTreeMap::new();
        let mut by_name: BTreeMap<(&str, &str), Option<FnRef<'a>>> = BTreeMap::new();
        for file in indexes {
            for item in &file.fns {
                let r = FnRef { file, item };
                let tk = (
                    file.crate_name.as_str(),
                    item.impl_type.as_str(),
                    item.name.as_str(),
                );
                typed.entry(tk).and_modify(|e| *e = None).or_insert(Some(r));
                let nk = (file.crate_name.as_str(), item.name.as_str());
                by_name
                    .entry(nk)
                    .and_modify(|e| *e = None)
                    .or_insert(Some(r));
            }
        }
        Resolver { typed, by_name }
    }

    /// Resolve one call event made from `from`.
    fn resolve(&self, from: FnRef<'a>, callee: &str, receiver: &Receiver) -> Option<FnRef<'a>> {
        let krate = from.file.crate_name.as_str();
        match receiver {
            Receiver::SelfDot => self
                .typed
                .get(&(krate, from.item.impl_type.as_str(), callee))
                .copied()
                .flatten(),
            Receiver::Type(t) => self
                .typed
                .get(&(krate, t.as_str(), callee))
                .copied()
                .flatten(),
            Receiver::Free => self.typed.get(&(krate, "", callee)).copied().flatten(),
            Receiver::Method => self.by_name.get(&(krate, callee)).copied().flatten(),
        }
    }
}

/// The rank a guard-returning wrapper acquires, if statically unambiguous:
/// the wrapper must contain exactly one ranked acquisition.
fn guard_rank(f: FnRef<'_>) -> Option<&str> {
    if !f.item.returns_guard {
        return None;
    }
    let mut rank = None;
    for ev in &f.item.events {
        if let EventKind::Acquire { rank: r, .. } = &ev.kind {
            if r.is_empty() || rank.is_some() {
                return None;
            }
            rank = Some(r.as_str());
        }
    }
    rank
}

/// Ranks a callee acquires, one level deep: its direct acquisitions plus
/// the guard wrappers it calls. Also reports whether the callee waits on a
/// condvar.
fn callee_acquires<'a>(r: &Resolver<'a>, g: FnRef<'a>) -> (Vec<&'a str>, bool) {
    let mut ranks = Vec::new();
    let mut waits = false;
    for ev in &g.item.events {
        match &ev.kind {
            EventKind::Acquire { rank, .. } if !rank.is_empty() => ranks.push(rank.as_str()),
            EventKind::Wait => waits = true,
            EventKind::Call {
                callee, receiver, ..
            } => {
                if let Some(h) = r.resolve(g, callee, receiver) {
                    if let Some(rank) = guard_rank(h) {
                        ranks.push(rank);
                    }
                }
            }
            _ => {}
        }
    }
    (ranks, waits)
}

struct Held {
    rank: String,
    depth: i32,
    var: Option<String>,
}

/// One directed acquisition: `to` taken while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    path: String,
    line: usize,
}

/// LOCK-ORDER: the static lock-acquisition graph vs the declared ranks.
fn lock_order(indexes: &[FileIndex], out: &mut Vec<Finding>) {
    // The declared order: const name -> (rank, site).
    let mut ranks: BTreeMap<&str, (u32, &str, usize)> = BTreeMap::new();
    let mut by_value: BTreeMap<u32, &str> = BTreeMap::new();
    for file in indexes {
        for d in &file.rank_defs {
            ranks.insert(d.name.as_str(), (d.rank, file.path.as_str(), d.line));
            if let Some(first) = by_value.get(&d.rank) {
                if *first != d.name.as_str() {
                    out.push(Finding {
                        path: file.path.clone(),
                        line: d.line,
                        rule: "LOCK-ORDER",
                        message: format!(
                            "duplicate lock rank {}: `{}` collides with `{first}`; every \
                             lock level needs a distinct rank for the order to be total",
                            d.rank, d.name
                        ),
                    });
                }
            } else {
                by_value.insert(d.rank, d.name.as_str());
            }
        }
    }
    if ranks.is_empty() {
        return; // no lockdep table in scope (path-restricted run)
    }

    let resolver = Resolver::build(indexes);
    let mut edges: BTreeSet<Edge> = BTreeSet::new();

    for file in indexes {
        for item in &file.fns {
            let fr = FnRef { file, item };
            let mut held: Vec<Held> = Vec::new();
            let mut depth = 0i32;
            let acquire =
                |held: &Vec<Held>, edges: &mut BTreeSet<Edge>, rank: &str, line: usize| {
                    for h in held {
                        edges.insert(Edge {
                            from: h.rank.clone(),
                            to: rank.to_string(),
                            path: file.path.clone(),
                            line,
                        });
                    }
                };
            for ev in &item.events {
                match &ev.kind {
                    EventKind::Open => depth += 1,
                    EventKind::Close => {
                        depth -= 1;
                        held.retain(|h| h.depth <= depth);
                    }
                    EventKind::Acquire { rank, bound } if !rank.is_empty() => {
                        acquire(&held, &mut edges, rank, ev.line);
                        if bound.is_some() {
                            held.push(Held {
                                rank: rank.clone(),
                                depth,
                                var: bound.clone(),
                            });
                        }
                    }
                    EventKind::Wait if held.len() >= 2 => {
                        let names: Vec<&str> = held.iter().map(|h| h.rank.as_str()).collect();
                        out.push(Finding {
                            path: file.path.clone(),
                            line: ev.line,
                            rule: "LOCK-ORDER",
                            message: format!(
                                "condvar wait in `{}` while holding {} ranked locks \
                                 ({}): a wait releases only the waited lock, so every \
                                 other held lock deadlocks its next contender",
                                item.name,
                                held.len(),
                                names.join(", ")
                            ),
                        });
                    }
                    EventKind::DropVar { var } => {
                        held.retain(|h| h.var.as_deref() != Some(var.as_str()));
                    }
                    EventKind::Call {
                        callee,
                        receiver,
                        bound,
                    } => {
                        let Some(g) = resolver.resolve(fr, callee, receiver) else {
                            continue;
                        };
                        if let Some(r) = guard_rank(g) {
                            acquire(&held, &mut edges, r, ev.line);
                            if bound.is_some() {
                                held.push(Held {
                                    rank: r.to_string(),
                                    depth,
                                    var: bound.clone(),
                                });
                            }
                            continue;
                        }
                        let (acquired, waits) = callee_acquires(&resolver, g);
                        for r in acquired {
                            acquire(&held, &mut edges, r, ev.line);
                        }
                        if waits && !held.is_empty() {
                            let names: Vec<&str> = held.iter().map(|h| h.rank.as_str()).collect();
                            out.push(Finding {
                                path: file.path.clone(),
                                line: ev.line,
                                rule: "LOCK-ORDER",
                                message: format!(
                                    "`{}` calls `{}`, which waits on a condvar, while \
                                     holding {}: the held lock blocks every thread that \
                                     could satisfy the wait",
                                    item.name,
                                    g.item.name,
                                    names.join(", ")
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Rank violations: any edge that does not strictly increase.
    for e in &edges {
        let (Some((rf, _, _)), Some((rt, _, _))) =
            (ranks.get(e.from.as_str()), ranks.get(e.to.as_str()))
        else {
            continue;
        };
        if rf >= rt {
            out.push(Finding {
                path: e.path.clone(),
                line: e.line,
                rule: "LOCK-ORDER",
                message: format!(
                    "lock-order violation: `{}` (rank {rt}) acquired while holding `{}` \
                     (rank {rf}); the declared order in lockdep::ranks requires strictly \
                     increasing ranks",
                    e.to, e.from
                ),
            });
        }
    }

    // Cycles in the acquisition graph (even rank-consistent tables can't
    // have them, but a table-less edge set can).
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        // DFS bounded by the edge count; report a cycle through `start` once.
        let mut stack: Vec<(&str, Vec<&Edge>)> = vec![(start, Vec::new())];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, trail)) = stack.pop() {
            for &e in adj.get(node).into_iter().flatten() {
                if e.to == start {
                    let mut names: Vec<&str> = trail.iter().map(|t| t.from.as_str()).collect();
                    names.push(e.from.as_str());
                    names.push(start);
                    // canonical orientation: only report from the smallest
                    // node so each cycle appears once
                    if names.iter().min() == Some(&start) {
                        let first = trail.first().copied().unwrap_or(e);
                        out.push(Finding {
                            path: first.path.clone(),
                            line: first.line,
                            rule: "LOCK-ORDER",
                            message: format!(
                                "lock-acquisition cycle: {} -> {}; some interleaving of \
                                 these acquisitions deadlocks",
                                start,
                                names[1..].join(" -> ")
                            ),
                        });
                    }
                } else if seen.insert(e.to.as_str()) {
                    let mut t = trail.clone();
                    t.push(e);
                    stack.push((e.to.as_str(), t));
                }
            }
        }
    }
}

/// TEL-DEAD: dead table entries and unknown `names::X` references.
fn tel_dead(indexes: &[FileIndex], out: &mut Vec<Finding>) {
    let Some(names) = indexes
        .iter()
        .find(|f| f.path == crate::index::NAMES_PATH && !f.tel_consts.is_empty())
    else {
        return; // table not in scope (path-restricted run)
    };
    let known: BTreeSet<&str> = names.tel_consts.iter().map(|c| c.name.as_str()).collect();
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    for file in indexes {
        if file.path == names.path {
            continue;
        }
        for r in &file.tel_refs {
            referenced.insert(r.name.as_str());
        }
    }
    for c in &names.tel_consts {
        if !c.value.is_empty() && !referenced.contains(c.name.as_str()) {
            out.push(Finding {
                path: names.path.clone(),
                line: c.line,
                rule: "TEL-DEAD",
                message: format!(
                    "telemetry name `{}` (\"{}\") is defined in the names table but never \
                     recorded anywhere; wire it up or retire it",
                    c.name, c.value
                ),
            });
        }
    }
    for file in indexes {
        if file.path == names.path || (file.kind != FileKind::Lib && file.kind != FileKind::Bin) {
            continue;
        }
        for r in &file.tel_refs {
            if !r.in_test && !known.contains(r.name.as_str()) {
                out.push(Finding {
                    path: file.path.clone(),
                    line: r.line,
                    rule: "TEL-DEAD",
                    message: format!(
                        "`names::{}` is not defined in the telemetry names table \
                         (crates/telemetry/src/names.rs); add it there so the name \
                         registry stays the single source of truth",
                        r.name
                    ),
                });
            }
        }
    }
}

/// SCHEMA-DRIFT: one version per tag base across emitters, validators, and
/// CI gate files.
fn schema_drift(indexes: &[FileIndex], out: &mut Vec<Finding>) {
    // base -> sorted sites (path, line, version, is_gate)
    let mut sites: BTreeMap<&str, Vec<(&str, usize, &str, bool)>> = BTreeMap::new();
    for file in indexes {
        for t in &file.schema_tags {
            let Some((base, version)) = t.tag.split_once('/') else {
                continue;
            };
            sites.entry(base).or_default().push((
                file.path.as_str(),
                t.line,
                version,
                file.kind == FileKind::Gate,
            ));
        }
    }
    for (base, mut list) in sites {
        list.sort();
        let canonical = list.iter().find(|(_, _, _, gate)| !gate);
        let Some(&(cpath, cline, cver, _)) = canonical else {
            for (path, line, ver, _) in &list {
                out.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    rule: "SCHEMA-DRIFT",
                    message: format!(
                        "gate file checks `{base}/{ver}` but no source file defines a \
                         `{base}` tag: the gate guards a schema that no longer exists"
                    ),
                });
            }
            continue;
        };
        for (path, line, ver, _) in &list {
            if *ver != cver {
                out.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    rule: "SCHEMA-DRIFT",
                    message: format!(
                        "schema tag drift for `{base}`: this site says `{base}/{ver}` but \
                         the canonical definition ({cpath}:{cline}) says `{base}/{cver}`; \
                         bump emitter, validator, and CI gate together"
                    ),
                });
            }
        }
    }
}

/// BLOCKING-IN-HANDLER: blocking calls reachable from fcn-serve request
/// handlers, excluding the sanctioned framed I/O layer (io.rs).
fn blocking_in_handler(indexes: &[FileIndex], out: &mut Vec<Finding>) {
    let resolver = Resolver::build(indexes);
    let mut queue: Vec<(FnRef<'_>, String)> = Vec::new();
    let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();
    for file in indexes {
        if file.crate_name != "serve" || file.kind != FileKind::Lib {
            continue;
        }
        for (i, item) in file.fns.iter().enumerate() {
            if (item.name == "serve_conn" || item.name.starts_with("handle"))
                && seen.insert((file.path.as_str(), i))
            {
                queue.push((FnRef { file, item }, item.name.clone()));
            }
        }
    }
    while let Some((f, entry)) = queue.pop() {
        if SERVE_IO_ALLOWLIST.contains(&f.file.path.as_str()) {
            continue; // the framed layer is the sanctioned blocking site
        }
        for ev in &f.item.events {
            match &ev.kind {
                EventKind::Blocking { pat } => {
                    let via = if f.item.name == entry {
                        String::new()
                    } else {
                        format!(" (via `{}`)", f.item.name)
                    };
                    out.push(Finding {
                        path: f.file.path.clone(),
                        line: ev.line,
                        rule: "BLOCKING-IN-HANDLER",
                        message: format!(
                            "blocking call `{pat}` reachable from request handler \
                             `{entry}`{via}: handlers run under the request deadline; \
                             route I/O through the framed layer (io.rs) or precompute it"
                        ),
                    });
                }
                EventKind::Call {
                    callee, receiver, ..
                } => {
                    if let Some(g) = resolver.resolve(f, callee, receiver) {
                        if g.file.crate_name == "serve" {
                            let gi = g
                                .file
                                .fns
                                .iter()
                                .position(|it| std::ptr::eq(it, g.item))
                                .unwrap_or(usize::MAX);
                            if seen.insert((g.file.path.as_str(), gi)) {
                                queue.push((g, entry.clone()));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// SCHEMA-TAG, workspace half: duplicate tag literals across `.rs` files
/// and validator presence in each tag's defining file.
fn schema_tag_workspace(indexes: &[FileIndex], out: &mut Vec<Finding>) {
    let mut tag_sites: BTreeMap<&str, Vec<(&FileIndex, usize)>> = BTreeMap::new();
    for file in indexes {
        if file.kind == FileKind::Gate {
            continue; // gates grep for tags; that is their job, not drift
        }
        for t in &file.schema_tags {
            tag_sites
                .entry(t.tag.as_str())
                .or_default()
                .push((file, t.line));
        }
    }
    for (tag, sites) in &tag_sites {
        let mut files_with: Vec<&str> = sites.iter().map(|(f, _)| f.path.as_str()).collect();
        files_with.dedup();
        if files_with.len() > 1 {
            let canonical = files_with[0];
            for (f, ln) in sites.iter().filter(|(f, _)| f.path != canonical) {
                out.push(Finding {
                    path: f.path.clone(),
                    line: *ln,
                    rule: "SCHEMA-TAG",
                    message: format!(
                        "schema tag `{tag}` duplicated as a literal (canonical \
                         definition: {canonical}); reference the shared const instead"
                    ),
                });
            }
        }
        let (def, def_line) = sites[0];
        if !def.has_validator {
            out.push(Finding {
                path: def.path.clone(),
                line: def_line,
                rule: "SCHEMA-TAG",
                message: format!(
                    "schema tag `{tag}` has no matching validator in its defining file \
                     (expected a from_*/validate fn that checks the tag)"
                ),
            });
        }
    }
}

/// TEL-NAME, workspace half: duplicate metric-name values in the table.
fn tel_name_workspace(indexes: &[FileIndex], out: &mut Vec<Finding>) {
    let Some(names) = indexes.iter().find(|f| f.path == crate::index::NAMES_PATH) else {
        return;
    };
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for c in &names.tel_consts {
        if c.value.is_empty() {
            continue;
        }
        if let Some(first) = seen.get(c.value.as_str()) {
            out.push(Finding {
                path: names.path.clone(),
                line: c.line,
                rule: "TEL-NAME",
                message: format!(
                    "duplicate metric name `{}` in the names table (first defined on \
                     line {first})",
                    c.value
                ),
            });
        } else {
            seen.insert(c.value.as_str(), c.line);
        }
    }
}

/// Run every cross-file rule over the merged index set.
pub fn check_workspace(indexes: &[FileIndex]) -> Vec<Finding> {
    let mut out = Vec::new();
    schema_tag_workspace(indexes, &mut out);
    tel_name_workspace(indexes, &mut out);
    lock_order(indexes, &mut out);
    tel_dead(indexes, &mut out);
    schema_drift(indexes, &mut out);
    blocking_in_handler(indexes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;
    use crate::source::SourceFile;

    fn indexes(sources: &[(&str, &str)]) -> Vec<FileIndex> {
        sources
            .iter()
            .map(|(p, s)| build_index(&SourceFile::parse(p, s)))
            .collect()
    }

    const RANKS: &str = "\
pub const A_LOW: LockRank = LockRank::new(10, \"a\");
pub const B_HIGH: LockRank = LockRank::new(20, \"b\");
";

    #[test]
    fn inverted_nesting_is_a_violation() {
        let bad = "\
fn f(a: &M, b: &M) {
    let g = lock_ranked(b, ranks::B_HIGH);
    let h = lock_ranked(a, ranks::A_LOW);
    drop(h);
    drop(g);
}
";
        let ix = indexes(&[
            ("crates/telemetry/src/lockdep.rs", RANKS),
            ("crates/core/src/bad.rs", bad),
        ]);
        let out = check_workspace(&ix);
        let hits: Vec<&Finding> = out.iter().filter(|f| f.rule == "LOCK-ORDER").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].message.contains("lock-order violation"));
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn ordered_nesting_and_sequential_locks_are_clean() {
        let good = "\
fn nested(a: &M, b: &M) {
    let g = lock_ranked(a, ranks::A_LOW);
    let h = lock_ranked(b, ranks::B_HIGH);
    drop(h);
    drop(g);
}
fn sequential(a: &M, b: &M) {
    lock_ranked(b, ranks::B_HIGH).touch();
    lock_ranked(a, ranks::A_LOW).touch();
}
";
        let ix = indexes(&[
            ("crates/telemetry/src/lockdep.rs", RANKS),
            ("crates/core/src/good.rs", good),
        ]);
        let out = check_workspace(&ix);
        assert!(
            out.iter().all(|f| f.rule != "LOCK-ORDER"),
            "clean nesting flagged: {out:?}"
        );
    }

    #[test]
    fn guard_wrapper_counts_as_acquisition_across_files() {
        let wrapper = "\
impl Adm {
    fn lock(&self) -> RankedGuard<'_, u32> {
        lock_ranked(&self.m, ranks::B_HIGH)
    }
    fn nest(&self, a: &M) {
        let st = self.lock();
        let g = lock_ranked(a, ranks::A_LOW);
    }
}
";
        let ix = indexes(&[
            ("crates/telemetry/src/lockdep.rs", RANKS),
            ("crates/serve/src/adm.rs", wrapper),
        ]);
        let out = check_workspace(&ix);
        assert!(
            out.iter()
                .any(|f| f.rule == "LOCK-ORDER" && f.message.contains("lock-order violation")),
            "{out:?}"
        );
    }

    #[test]
    fn condvar_wait_with_two_held_locks_is_flagged() {
        let bad = "\
fn f(a: &M, b: &M, cv: &C) {
    let g = lock_ranked(a, ranks::A_LOW);
    let h = lock_ranked(b, ranks::B_HIGH);
    let (h2, _) = wait_timeout_ranked(cv, h, d);
}
";
        let ix = indexes(&[
            ("crates/telemetry/src/lockdep.rs", RANKS),
            ("crates/core/src/bad.rs", bad),
        ]);
        let out = check_workspace(&ix);
        assert!(
            out.iter()
                .any(|f| f.rule == "LOCK-ORDER" && f.message.contains("condvar wait")),
            "{out:?}"
        );
    }

    #[test]
    fn drop_releases_before_the_next_acquire() {
        let good = "\
fn f(a: &M, b: &M) {
    let g = lock_ranked(b, ranks::B_HIGH);
    drop(g);
    let h = lock_ranked(a, ranks::A_LOW);
}
";
        let ix = indexes(&[
            ("crates/telemetry/src/lockdep.rs", RANKS),
            ("crates/core/src/good.rs", good),
        ]);
        let out = check_workspace(&ix);
        assert!(out.iter().all(|f| f.rule != "LOCK-ORDER"), "{out:?}");
    }

    #[test]
    fn tel_dead_flags_unrecorded_and_unknown_names() {
        let names = "\
pub const LIVE: &str = \"live_total\";
pub const DEAD: &str = \"dead_total\";
";
        let user = "\
fn f(s: &mut S) {
    s.inc(names::LIVE);
    s.inc(names::GHOST);
}
";
        let ix = indexes(&[
            ("crates/telemetry/src/names.rs", names),
            ("crates/routing/src/lib.rs", user),
        ]);
        let out = check_workspace(&ix);
        assert!(
            out.iter()
                .any(|f| f.rule == "TEL-DEAD" && f.message.contains("`DEAD`")),
            "{out:?}"
        );
        assert!(
            out.iter()
                .any(|f| f.rule == "TEL-DEAD" && f.message.contains("names::GHOST")),
            "{out:?}"
        );
        assert!(
            !out.iter()
                .any(|f| f.rule == "TEL-DEAD" && f.message.contains("`LIVE`")),
            "{out:?}"
        );
    }

    #[test]
    fn schema_drift_catches_version_skew_and_stale_gates() {
        let emitter = "pub const S: &str = \"fcn-demo/2\";\nfn validate_s() {}\n";
        let stale = "fn emit() { let t = \"fcn-demo/1\"; }\nfn from_t() {}\n";
        let gate = "grep -q 'fcn-demo/1' out.json\ngrep -q 'fcn-gone/4' old.json\n";
        let ix = indexes(&[
            ("crates/x/src/lib.rs", emitter),
            ("crates/y/src/lib.rs", stale),
            (".github/workflows/ci.yml", gate),
        ]);
        let out = check_workspace(&ix);
        let drift: Vec<&Finding> = out.iter().filter(|f| f.rule == "SCHEMA-DRIFT").collect();
        assert!(
            drift
                .iter()
                .any(|f| f.path == "crates/y/src/lib.rs" && f.message.contains("fcn-demo/1")),
            "{drift:?}"
        );
        assert!(
            drift
                .iter()
                .any(|f| f.path == ".github/workflows/ci.yml" && f.message.contains("fcn-demo/1")),
            "{drift:?}"
        );
        assert!(
            drift
                .iter()
                .any(|f| f.message.contains("no source file defines")),
            "{drift:?}"
        );
    }

    #[test]
    fn blocking_reachable_from_handler_is_flagged_io_rs_exempt() {
        let server = "\
fn handle_frame(p: &str) {
    helper(p);
}
fn helper(p: &str) {
    let t = fs::read_to_string(p);
}
fn cold_path(p: &str) {
    let t = fs::read_to_string(p);
}
";
        let io = "fn handle_io(p: &str) { let t = fs::read_to_string(p); }\n";
        let ix = indexes(&[
            ("crates/serve/src/server.rs", server),
            ("crates/serve/src/io.rs", io),
        ]);
        let out = check_workspace(&ix);
        let hits: Vec<&Finding> = out
            .iter()
            .filter(|f| f.rule == "BLOCKING-IN-HANDLER")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 5);
        assert!(hits[0].message.contains("`handle_frame`"));
        assert!(hits[0].message.contains("via `helper`"));
    }
}
