//! The rule set: fourteen invariant checks (ten per-file, four cross-file).
//!
//! | id | invariant it pins |
//! |----|-------------------|
//! | `DET-HASH`   | no hash-ordered containers in simulation crates |
//! | `DET-TIME`   | wall clock only in allowlisted measurement files |
//! | `DET-RNG`    | all randomness flows from explicit seeds |
//! | `ERR-UNWRAP` | no `unwrap`/`expect`/`panic!` in library code |
//! | `SCHEMA-TAG` | every JSON emitter stamps a versioned `fcn-*/N` tag |
//! | `TEL-NAME`   | telemetry metric names come from one const table |
//! | `ATOMIC-DOC` | every atomic `Ordering::` carries a justification |
//! | `SHARD-MERGE`| cross-shard buffers drain only through the merge helper |
//! | `SERVE-DEADLINE` | service-crate sockets speak only through the framed I/O layer |
//! | `CHAOS-SEED` | wire-fault injection lives only in the seeded ChaosPlan path |
//! | `LOCK-ORDER` | `lock_ranked` nesting follows the declared lockdep rank order |
//! | `TEL-DEAD`   | every telemetry name is recorded somewhere, every record site named |
//! | `SCHEMA-DRIFT` | emitter, validator, and CI gate agree on every tag's version |
//! | `BLOCKING-IN-HANDLER` | no blocking I/O reachable from fcn-serve handlers |
//!
//! Per-file rules run over the scrubbed planes of [`SourceFile`]; matches
//! inside strings, comments, and `#[cfg(test)]` regions never fire (except
//! where a rule explicitly reads the string or comment plane). The four
//! cross-file rules live in [`crate::graph`] and run over the phase-1
//! [`crate::index::FileIndex`] set.

use crate::report::Finding;
use crate::source::{FileKind, SourceFile};

/// Crates whose code runs *inside* the simulation: any nondeterminism here
/// changes table bytes.
pub const SIM_CRATES: &[&str] = &[
    "topology",
    "routing",
    "bandwidth",
    "core",
    "faults",
    "multigraph",
];

/// Files allowed to read the wall clock: the measurement harness itself.
pub const TIME_ALLOWLIST: &[&str] = &[
    // span timers are wall-clock by definition and are stripped from
    // determinism comparisons by `MetricsSnapshot::without_wall_clock`
    "crates/telemetry/src/span.rs",
    // pool busy/idle accounting + the watchdog deadline
    "crates/exec/src/lib.rs",
];

/// All rule ids with one-line rationales (drives `--list` and the docs).
pub const RULES: &[(&str, &str)] = &[
    (
        "DET-HASH",
        "no HashMap/HashSet in simulation crates: hash iteration order is nondeterministic",
    ),
    (
        "DET-TIME",
        "Instant::now/SystemTime/thread::sleep only in allowlisted measurement files",
    ),
    (
        "DET-RNG",
        "no entropy-seeded RNG: all randomness must flow from explicit seed parameters",
    ),
    (
        "ERR-UNWRAP",
        "no unwrap()/expect()/panic! in non-test library code: use the typed error enums",
    ),
    (
        "SCHEMA-TAG",
        "every serde_json emitter stamps a versioned fcn-*/N schema tag with a matching validator",
    ),
    (
        "TEL-NAME",
        "telemetry metric names must come from the fcn_telemetry::names const table",
    ),
    (
        "ATOMIC-DOC",
        "every atomic Ordering:: use carries an `// ordering:` justification comment",
    ),
    (
        "SHARD-MERGE",
        "cross-shard boundary buffers iterate only through merge_outboxes: direct .msgs \
         access elsewhere in fcn-routing can replay arrivals in shard order, not \
         activation order",
    ),
    (
        "SERVE-DEADLINE",
        "raw socket reads/writes in fcn-serve only inside the framed I/O layer (io.rs): \
         every other path must go through FramedConn so no request can outlive its \
         deadline or wedge a drain on a stalled peer",
    ),
    (
        "CHAOS-SEED",
        "fault injection in fcn-serve is handled only by the seeded ChaosPlan path \
         (chaos.rs deciding, io.rs applying): a ChaosAction constructed or matched \
         anywhere else is an injection site the differential pin cannot replay",
    ),
    (
        "LOCK-ORDER",
        "lock_ranked nesting must follow the declared lockdep::ranks order: every \
         acquisition made while other ranked locks are held strictly increases the \
         rank, the acquisition graph is acyclic, and a condvar wait holds only the \
         waited lock",
    ),
    (
        "TEL-DEAD",
        "every const in the telemetry names table is recorded somewhere, and every \
         names:: reference resolves to the table: dead names are schema noise, \
         unknown names are unvalidated drift",
    ),
    (
        "SCHEMA-DRIFT",
        "every fcn-*/N schema tag carries one version everywhere it appears — \
         emitters, validators, and CI gate files — so a bump cannot leave a stale \
         reader or gate behind",
    ),
    (
        "BLOCKING-IN-HANDLER",
        "no blocking socket/fs/process call reachable from an fcn-serve request \
         handler outside the framed I/O layer (io.rs): handlers run under the \
         request deadline and must never wedge on the OS",
    ),
];

/// The one file allowed to touch a boundary `Outbox`'s message buffer
/// directly: the canonical boundary-exchange merge itself.
pub const SHARD_MERGE_ALLOWLIST: &[&str] = &["crates/routing/src/boundary.rs"];

/// The one file in fcn-serve allowed to call raw socket reads/writes: the
/// deadline-wrapping framed I/O layer itself.
pub const SERVE_IO_ALLOWLIST: &[&str] = &["crates/serve/src/io.rs"];

/// The two files that make up the seeded wire-chaos path: the plan that
/// decides each fault and the framed I/O layer that applies it.
pub const CHAOS_SEED_ALLOWLIST: &[&str] = &["crates/serve/src/chaos.rs", "crates/serve/src/io.rs"];

/// True if `id` names a known rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Byte offsets of `pat` in `code` honoring identifier boundaries on
/// whichever ends of the pattern are identifier characters.
pub(crate) fn token_hits(code: &str, pat: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = code.as_bytes();
    let first_ident = pat
        .chars()
        .next()
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false);
    let last_ident = pat
        .chars()
        .last()
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false);
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        let ok_before = !first_ident || at == 0 || !is_ident(bytes[at - 1]);
        let end = at + pat.len();
        let ok_after = !last_ident || end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            hits.push(at);
        }
        from = at + pat.len().max(1);
    }
    hits
}

/// Does `code` contain `pat` as the *prefix* of an identifier/path (word
/// boundary before, free continuation after)? Used for validator detection,
/// where `validate_report`, `from_jsonl`, `from_str` all count.
pub(crate) fn has_prefix_token(code: &str, pat: &str) -> bool {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        if at == 0 || !is_ident(bytes[at - 1]) {
            return true;
        }
        from = at + pat.len().max(1);
    }
    false
}

fn finding(sf: &SourceFile, line: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        path: sf.path.clone(),
        line,
        rule,
        message,
    }
}

/// DET-HASH: hash-ordered containers inside simulation crates.
fn det_hash(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib || !SIM_CRATES.contains(&sf.crate_name.as_str()) {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for pat in ["HashMap", "HashSet", "hash_map", "hash_set"] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "DET-HASH",
                    format!(
                        "`{pat}` in simulation crate `{}`: hash iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or a documented sort",
                        sf.crate_name
                    ),
                ));
                break; // one finding per line
            }
        }
    }
}

/// DET-TIME: wall-clock reads outside the measurement allowlist.
fn det_time(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind == FileKind::Test || sf.kind == FileKind::Bench {
        return;
    }
    if sf.crate_name == "bench" || TIME_ALLOWLIST.contains(&sf.path.as_str()) {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for pat in ["Instant::now", "SystemTime", "thread::sleep"] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "DET-TIME",
                    format!(
                        "`{pat}` outside the measurement allowlist: simulation output \
                         must not depend on the wall clock"
                    ),
                ));
                break;
            }
        }
    }
}

/// DET-RNG: entropy-seeded randomness anywhere (tests included — the
/// reproducibility contract covers them too).
fn det_rng(sf: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        for pat in [
            "thread_rng",
            "from_entropy",
            "from_os_rng",
            "OsRng",
            "rand::random",
            "RandomState",
        ] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "DET-RNG",
                    format!(
                        "`{pat}` is entropy-seeded: all randomness must flow from \
                         job_seed/retry_seed or an explicit seed parameter"
                    ),
                ));
                break;
            }
        }
    }
}

/// ERR-UNWRAP: panicking escape hatches in non-test library code.
fn err_unwrap(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for pat in [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "ERR-UNWRAP",
                    format!(
                        "`{}` in library code: return the crate's typed error \
                         (CmdError/RouteError convention) instead of panicking",
                        pat.trim_start_matches('.')
                    ),
                ));
                break;
            }
        }
    }
}

/// The `fcn-xyz/N` schema-tag pattern, scanned over the string plane.
pub(crate) fn schema_tags_in(strings: &str) -> Vec<String> {
    let mut tags = Vec::new();
    let bytes = strings.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = strings[from..].find("fcn-") {
        let start = from + pos;
        let mut end = start + 4;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'-')
        {
            end += 1;
        }
        if end < bytes.len() && bytes[end] == b'/' {
            let mut v = end + 1;
            while v < bytes.len() && bytes[v].is_ascii_digit() {
                v += 1;
            }
            if v > end + 1 && end > start + 4 {
                tags.push(strings[start..v].to_string());
                from = v;
                continue;
            }
        }
        from = start + 4;
    }
    tags
}

/// SCHEMA-TAG, per-file half: a serde_json emit call in a file with no
/// versioned tag anywhere in its (non-test) string literals.
fn schema_tag_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib && sf.kind != FileKind::Bin {
        return;
    }
    // A file is "tagged" if it carries an `fcn-*/N` literal itself or
    // references a shared `*SCHEMA*` const (the bench bins stamp rows via
    // consts exported from the bench library).
    let has_tag = sf.lines.iter().enumerate().any(|(i, l)| {
        !sf.is_test_line(i + 1)
            && (!schema_tags_in(&l.strings).is_empty() || l.code.contains("SCHEMA"))
    });
    if has_tag {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for pat in ["serde_json::to_string", "to_writer("] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "SCHEMA-TAG",
                    "serde_json emitter in a file with no versioned `fcn-*/N` schema \
                     tag: stamp the payload and validate it on read"
                        .to_string(),
                ));
                break;
            }
        }
    }
}

/// TEL-NAME, per-file half: string literals fed straight into telemetry
/// calls instead of `fcn_telemetry::names` consts.
fn tel_name(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib && sf.kind != FileKind::Bin {
        return;
    }
    if sf.path == "crates/telemetry/src/names.rs" {
        return; // the table itself
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for pat in [
            ".add(\"",
            ".inc(\"",
            ".record(\"",
            ".set_gauge(\"",
            ".record_histogram(\"",
            ".record_span(\"",
            ".counter(\"",
            ".gauge(\"",
            ".histogram(\"",
            "Span::enter(\"",
        ] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "TEL-NAME",
                    format!(
                        "metric name passed as a string literal to `{}`: use a const \
                         from fcn_telemetry::names so names cannot drift",
                        pat.trim_end_matches('"')
                    ),
                ));
                break;
            }
        }
    }
}

/// ATOMIC-DOC: atomic orderings without an `// ordering:` justification.
///
/// An `// ordering:` comment covers every `Ordering::` use in the
/// contiguous block that follows it: coverage starts at the comment and
/// ends at the first fully blank line (no code, no comment). This matches
/// how the comments are written in practice — one justification heads a
/// paragraph of related atomic operations (e.g. the bucket/count/sum triple
/// of a histogram record) without requiring the marker to be restated on
/// every statement.
fn atomic_doc(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind == FileKind::Test {
        return;
    }
    let mut covered = false;
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if line.code.trim().is_empty() && line.comment.trim().is_empty() {
            covered = false; // blank line ends the justified paragraph
            continue;
        }
        if line.comment.contains("ordering:") {
            covered = true;
        }
        if sf.is_test_line(ln) {
            continue;
        }
        let mut which = None;
        for pat in [
            "Ordering::Relaxed",
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ] {
            if !token_hits(&line.code, pat).is_empty() {
                which = Some(pat);
                break;
            }
        }
        let Some(pat) = which else { continue };
        if !covered {
            out.push(finding(
                sf,
                ln,
                "ATOMIC-DOC",
                format!(
                    "`{pat}` without an `// ordering:` justification comment \
                     heading its paragraph (same contiguous non-blank block)"
                ),
            ));
        }
    }
}

/// SHARD-MERGE: cross-shard boundary buffers drained outside the canonical
/// merge. The sharded router's bit-identity proof hinges on exactly one
/// traversal order for boundary messages — the activation-key merge in
/// `boundary.rs`. `Outbox`'s fields are private precisely so `.msgs` can
/// only appear there; this rule keeps it that way when fields move or a
/// future buffer forgets the encapsulation.
fn shard_merge(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib || sf.crate_name != "routing" {
        return;
    }
    if SHARD_MERGE_ALLOWLIST.contains(&sf.path.as_str()) {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        if !token_hits(&line.code, ".msgs").is_empty() {
            out.push(finding(
                sf,
                ln,
                "SHARD-MERGE",
                "direct access to a cross-shard boundary buffer (`.msgs`) outside \
                 boundary.rs: iterate via merge_outboxes so arrivals replay in \
                 activation order, never shard order"
                    .to_string(),
            ));
        }
    }
}

/// SERVE-DEADLINE: raw blocking socket calls in fcn-serve outside the
/// framed I/O layer. The service's liveness contract — a deadline-armed
/// watchdog can always cancel a request, and a drain can always finish —
/// holds only because every blocking read polls the stop flag and every
/// write runs under a timeout, and *that* holds only while all socket
/// traffic funnels through `FramedConn` in `io.rs`. A bare `.read(` /
/// `.write_all(` anywhere else is a path a stalled peer can wedge forever.
fn serve_deadline(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib || sf.crate_name != "serve" {
        return;
    }
    if SERVE_IO_ALLOWLIST.contains(&sf.path.as_str()) {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for pat in [
            ".read(",
            ".read_exact(",
            ".read_to_end(",
            ".write(",
            ".write_all(",
            ".flush(",
        ] {
            if !token_hits(&line.code, pat).is_empty() {
                out.push(finding(
                    sf,
                    ln,
                    "SERVE-DEADLINE",
                    format!(
                        "raw socket call `{}` outside the framed I/O layer: route it \
                         through FramedConn (crates/serve/src/io.rs) so the read polls \
                         the stop flag and the write runs under a timeout",
                        pat.trim_start_matches('.')
                    ),
                ));
                break;
            }
        }
    }
}

/// CHAOS-SEED: chaos actions handled outside the seeded plan path. The
/// differential chaos pin (retrying client vs chaos daemon is byte-identical
/// to a clean run) holds because every injected fault is a pure function of
/// (seed, rates, connection, frame) — decided in `chaos.rs`, applied in
/// `io.rs`, nowhere else. Any other site constructing or matching a
/// `ChaosAction` is an ad-hoc injection point the plan cannot account for,
/// which silently unpins the replay. Imports/re-exports don't inject and
/// are exempt.
fn chaos_seed(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind != FileKind::Lib || sf.crate_name != "serve" {
        return;
    }
    if CHAOS_SEED_ALLOWLIST.contains(&sf.path.as_str()) {
        return;
    }
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        let code = line.code.trim_start();
        if code.starts_with("use ") || code.starts_with("pub use ") {
            continue;
        }
        if !token_hits(&line.code, "ChaosAction").is_empty() {
            out.push(finding(
                sf,
                ln,
                "CHAOS-SEED",
                "`ChaosAction` handled outside the seeded chaos path (chaos.rs / \
                 io.rs): route all fault injection through ChaosPlan so the \
                 differential replay pin stays sound"
                    .to_string(),
            ));
        }
    }
}

/// Run every per-file rule over `sf`.
pub fn check_file(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    det_hash(sf, &mut out);
    det_time(sf, &mut out);
    det_rng(sf, &mut out);
    err_unwrap(sf, &mut out);
    schema_tag_file(sf, &mut out);
    tel_name(sf, &mut out);
    atomic_doc(sf, &mut out);
    shard_merge(sf, &mut out);
    serve_deadline(sf, &mut out);
    chaos_seed(sf, &mut out);
    out
}

/// Cross-file checks now run in [`crate::graph::check_workspace`] over the
/// phase-1 index; this thin wrapper keeps the historical entry point for
/// callers holding parsed sources.
pub fn check_workspace(files: &[SourceFile]) -> Vec<Finding> {
    let indexes: Vec<crate::index::FileIndex> =
        files.iter().map(crate::index::build_index).collect();
    crate::graph::check_workspace(&indexes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_hits_respect_boundaries() {
        assert_eq!(token_hits("let m = HashMap::new();", "HashMap").len(), 1);
        assert!(token_hits("let m = MyHashMapx;", "HashMap").is_empty());
        assert_eq!(token_hits("x.unwrap();", ".unwrap()").len(), 1);
        assert!(token_hits("x.unwrap_or(0);", ".unwrap()").is_empty());
        assert!(token_hits("x.expect_err(e);", ".expect(").is_empty());
    }

    #[test]
    fn schema_tag_scanner_finds_versioned_tags() {
        assert_eq!(
            schema_tags_in("   fcn-telemetry/1   fcn-x/12 "),
            vec!["fcn-telemetry/1".to_string(), "fcn-x/12".to_string()]
        );
        assert!(schema_tags_in(" fcn-/1 fcn-abc ").is_empty());
    }
}
