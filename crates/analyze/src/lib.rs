#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-analyze — the workspace invariant checker
//!
//! Every number in the reproduced Tables 1–4 is bit-for-bit reproducible at
//! any `--jobs N`; the invariants that guarantee this (seeded RNG only, no
//! wall clock in simulation paths, no hash-order iteration, typed errors,
//! versioned JSON schemas, one telemetry name table, justified atomics)
//! used to live in reviewers' heads. This crate makes them machine-checked:
//! a rustc-`tidy`-style, dependency-free, line/token-level pass over the
//! whole workspace.
//!
//! * Diagnostics: `path:line: [RULE-ID] message`; `--format json` emits the
//!   validated [`report::REPORT_SCHEMA`] JSONL report.
//! * Suppression: `// fcn-allow: RULE-ID reason` on the offending line or
//!   the line above (an empty reason does not count).
//! * Baseline: `fcn-analyze.baseline` at the workspace root grandfathers
//!   findings by `(path, rule, message)`; the committed baseline is empty
//!   and the CI `analysis` job keeps it that way.
//! * Exit codes: 0 clean, 1 new findings, 2 I/O or usage error.
//!
//! See DESIGN.md "§ Static analysis & enforced invariants" for the rule
//! table and the rationale tying each rule to a determinism pin.

pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

use std::path::Path;

use report::{Finding, Totals};
use source::SourceFile;

/// Outcome of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Findings that survived suppressions, the baseline, and `--rule`
    /// filtering, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Run counters (drives the report header and the exit code).
    pub totals: Totals,
}

/// Analyze in-memory sources (the unit-test entry point; the walker and CLI
/// both funnel here so fixtures and the real workspace share one code path).
pub fn analyze_sources(
    sources: &[(String, String)],
    rule_filter: &[String],
    baseline: &[String],
) -> Analysis {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, text)| SourceFile::parse(p, text))
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    for sf in &files {
        raw.extend(rules::check_file(sf));
    }
    raw.extend(rules::check_workspace(&files));

    if !rule_filter.is_empty() {
        raw.retain(|f| rule_filter.iter().any(|r| r == f.rule));
    }

    let by_path = |p: &str| files.iter().find(|f| f.path == p);
    let mut suppressed = 0usize;
    let mut baselined = 0usize;
    let mut kept: Vec<Finding> = Vec::new();
    for f in raw {
        let masked = by_path(&f.path)
            .map(|sf| {
                sf.suppressions
                    .iter()
                    .filter(|s| !s.reason.is_empty())
                    .any(|s| {
                        s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line) && {
                            s.used.set(true);
                            true
                        }
                    })
            })
            .unwrap_or(false);
        if masked {
            suppressed += 1;
            continue;
        }
        if baseline.contains(&f.baseline_key()) {
            baselined += 1;
            continue;
        }
        kept.push(f);
    }
    kept.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    kept.dedup();
    let totals = Totals {
        files: files.len(),
        findings: kept.len(),
        suppressed,
        baselined,
    };
    Analysis {
        findings: kept,
        totals,
    }
}

/// Analyze the on-disk workspace rooted at `root`, optionally restricted to
/// `paths` (root-relative prefixes).
pub fn analyze_workspace(
    root: &Path,
    paths: &[String],
    rule_filter: &[String],
    baseline: &[String],
) -> std::io::Result<Analysis> {
    let mut sources = walk::collect_sources(root)?;
    if !paths.is_empty() {
        let norm: Vec<String> = paths
            .iter()
            .map(|p| p.trim_start_matches("./").trim_end_matches('/').to_string())
            .collect();
        sources.retain(|(p, _)| {
            norm.iter()
                .any(|q| p == q || p.starts_with(&format!("{q}/")))
        });
    }
    Ok(analyze_sources(&sources, rule_filter, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, body: &str) -> (String, String) {
        (path.to_string(), body.to_string())
    }

    #[test]
    fn rule_filter_restricts_output() {
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )];
        let all = analyze_sources(&sources, &[], &[]);
        assert!(all.findings.iter().any(|f| f.rule == "DET-HASH"));
        assert!(all.findings.iter().any(|f| f.rule == "ERR-UNWRAP"));
        let only = analyze_sources(&sources, &["DET-HASH".to_string()], &[]);
        assert!(only.findings.iter().all(|f| f.rule == "DET-HASH"));
        assert_eq!(only.totals.findings, only.findings.len());
    }

    #[test]
    fn baseline_masks_by_key_not_line() {
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "\n\nuse std::collections::HashMap;\n",
        )];
        let first = analyze_sources(&sources, &[], &[]);
        assert_eq!(first.totals.findings, 1);
        let keys: Vec<String> = first.findings.iter().map(|f| f.baseline_key()).collect();
        let second = analyze_sources(&sources, &[], &keys);
        assert_eq!(second.totals.findings, 0);
        assert_eq!(second.totals.baselined, 1);
    }

    #[test]
    fn empty_reason_suppression_does_not_mask() {
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "use std::collections::HashMap; // fcn-allow: DET-HASH\n",
        )];
        let got = analyze_sources(&sources, &[], &[]);
        assert_eq!(got.totals.findings, 1, "reason-less allow is ignored");
    }
}
