#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-analyze — the workspace invariant checker
//!
//! Every number in the reproduced Tables 1–4 is bit-for-bit reproducible at
//! any `--jobs N`; the invariants that guarantee this (seeded RNG only, no
//! wall clock in simulation paths, no hash-order iteration, typed errors,
//! versioned JSON schemas, one telemetry name table, justified atomics, a
//! total lock order) used to live in reviewers' heads. This crate makes
//! them machine-checked: a rustc-`tidy`-style, dependency-free pass over
//! the whole workspace.
//!
//! Analysis runs in two phases:
//!
//! 1. **Per-file** ([`phase1`]): each file is scrubbed ([`source`]), run
//!    through the ten per-file rules ([`rules`]), and condensed into a
//!    lightweight symbol/event index ([`index`]). The triple (findings,
//!    suppressions, index) is a [`FileArtifact`] — the unit of the
//!    incremental [`cache`].
//! 2. **Cross-file** ([`graph`]): the merged index set drives the four
//!    workspace rules — `LOCK-ORDER`, `TEL-DEAD`, `SCHEMA-DRIFT`,
//!    `BLOCKING-IN-HANDLER` — plus the workspace halves of `SCHEMA-TAG`
//!    and `TEL-NAME`.
//!
//! * Diagnostics: `path:line: [RULE-ID] message`; `--format json` emits the
//!   validated [`report::REPORT_SCHEMA`] JSONL report; `--format sarif`
//!   emits a SARIF 2.1.0 log for code-scanning UIs.
//! * Suppression: `// fcn-allow: RULE-ID reason` on the offending line or
//!   the line above (an empty reason does not count).
//! * Baseline: `fcn-analyze.baseline` at the workspace root grandfathers
//!   findings by occurrence-indexed `(path, rule, message)` keys; the
//!   committed baseline is empty and the CI `analysis` job keeps it that
//!   way.
//! * Exit codes: 0 clean, 1 new findings, 2 I/O or usage error.
//!
//! See DESIGN.md "§ Static analysis & enforced invariants" for the rule
//! table and the rationale tying each rule to a determinism pin.

pub mod cache;
pub mod graph;
pub mod index;
pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

use std::path::Path;

use report::{occurrence_keys, Finding, Totals};
use source::SourceFile;

/// A suppression in cacheable form (no interior mutability, no source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSuppression {
    /// 1-based line of the `fcn-allow` comment (covers this line and the next).
    pub line: usize,
    /// Rule id it names.
    pub rule: String,
    /// Justification text (must be non-empty to mask anything).
    pub reason: String,
}

/// Everything phase 1 produces for one file: the unit of caching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileArtifact {
    /// Workspace-relative path.
    pub path: String,
    /// Raw per-file findings (pre-suppression, pre-baseline).
    pub findings: Vec<Finding>,
    /// Inline suppressions found in the file.
    pub suppressions: Vec<CachedSuppression>,
    /// The phase-1 symbol/event index.
    pub index: index::FileIndex,
}

/// Run phase 1 on one file: scrub, per-file rules, index.
pub fn phase1(path: &str, text: &str) -> FileArtifact {
    let sf = SourceFile::parse(path, text);
    let findings = rules::check_file(&sf);
    let idx = index::build_index(&sf);
    let suppressions = sf
        .suppressions
        .iter()
        .map(|s| CachedSuppression {
            line: s.line,
            rule: s.rule.clone(),
            reason: s.reason.clone(),
        })
        .collect();
    FileArtifact {
        path: path.to_string(),
        findings,
        suppressions,
        index: idx,
    }
}

/// Outcome of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Findings that survived suppressions, the baseline, and `--rule`
    /// filtering, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Run counters (drives the report header and the exit code).
    pub totals: Totals,
}

/// Phase 2 + filtering: combine per-file artifacts with the cross-file
/// rules, then apply the rule filter, suppressions, and the baseline.
pub fn analyze_artifacts(
    artifacts: &[FileArtifact],
    rule_filter: &[String],
    baseline: &[String],
) -> Analysis {
    let indexes: Vec<index::FileIndex> = artifacts.iter().map(|a| a.index.clone()).collect();

    let mut raw: Vec<Finding> = Vec::new();
    for a in artifacts {
        raw.extend(a.findings.iter().cloned());
    }
    raw.extend(graph::check_workspace(&indexes));

    if !rule_filter.is_empty() {
        raw.retain(|f| rule_filter.iter().any(|r| r == f.rule));
    }

    // Sort and dedup *before* masking so occurrence indexes are stable.
    raw.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    raw.dedup();

    let by_path = |p: &str| artifacts.iter().find(|a| a.path == p);
    let mut suppressed = 0usize;
    let mut unmasked: Vec<Finding> = Vec::new();
    for f in raw {
        let masked = by_path(&f.path)
            .map(|a| {
                a.suppressions.iter().any(|s| {
                    !s.reason.is_empty()
                        && s.rule == f.rule
                        && (s.line == f.line || s.line + 1 == f.line)
                })
            })
            .unwrap_or(false);
        if masked {
            suppressed += 1;
        } else {
            unmasked.push(f);
        }
    }

    // Baseline masking by occurrence-indexed key: the k-th identical
    // finding needs the k-th key, so a single baseline entry can never
    // swallow a newly introduced duplicate.
    let keys = occurrence_keys(&unmasked);
    let mut baselined = 0usize;
    let mut kept: Vec<Finding> = Vec::new();
    for (f, key) in unmasked.into_iter().zip(keys) {
        if baseline.contains(&key) {
            baselined += 1;
        } else {
            kept.push(f);
        }
    }

    let totals = Totals {
        files: artifacts.len(),
        findings: kept.len(),
        suppressed,
        baselined,
    };
    Analysis {
        findings: kept,
        totals,
    }
}

/// Analyze in-memory sources (the unit-test entry point; the walker and CLI
/// both funnel here so fixtures and the real workspace share one code path).
pub fn analyze_sources(
    sources: &[(String, String)],
    rule_filter: &[String],
    baseline: &[String],
) -> Analysis {
    let artifacts: Vec<FileArtifact> = sources.iter().map(|(p, t)| phase1(p, t)).collect();
    analyze_artifacts(&artifacts, rule_filter, baseline)
}

/// Analyze the on-disk workspace rooted at `root`, optionally restricted to
/// `paths` (root-relative prefixes).
pub fn analyze_workspace(
    root: &Path,
    paths: &[String],
    rule_filter: &[String],
    baseline: &[String],
) -> std::io::Result<Analysis> {
    analyze_workspace_cached(root, paths, rule_filter, baseline, None)
}

/// [`analyze_workspace`] with an optional incremental cache: phase-1
/// artifacts of files whose content hash matches the cache are reused
/// verbatim; phase 2 always reruns. The (possibly refreshed) cache is
/// written back to `cache_path` after analysis.
pub fn analyze_workspace_cached(
    root: &Path,
    paths: &[String],
    rule_filter: &[String],
    baseline: &[String],
    cache_path: Option<&Path>,
) -> std::io::Result<Analysis> {
    let mut sources = walk::collect_sources(root)?;
    if !paths.is_empty() {
        let norm: Vec<String> = paths
            .iter()
            .map(|p| p.trim_start_matches("./").trim_end_matches('/').to_string())
            .collect();
        sources.retain(|(p, _)| {
            norm.iter()
                .any(|q| p == q || p.starts_with(&format!("{q}/")))
        });
    }

    let cached = cache_path
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|text| cache::parse(&text))
        .unwrap_or_default();

    let mut artifacts: Vec<(FileArtifact, u64)> = Vec::with_capacity(sources.len());
    for (path, text) in &sources {
        let hash = cache::fnv1a64(text);
        let artifact = match cached.get(path) {
            Some((h, a)) if *h == hash => a.clone(),
            _ => phase1(path, text),
        };
        artifacts.push((artifact, hash));
    }

    if let Some(p) = cache_path {
        let entries: Vec<(&FileArtifact, u64)> = artifacts.iter().map(|(a, h)| (a, *h)).collect();
        std::fs::write(p, cache::render(&entries))?;
    }

    let plain: Vec<FileArtifact> = artifacts.into_iter().map(|(a, _)| a).collect();
    Ok(analyze_artifacts(&plain, rule_filter, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, body: &str) -> (String, String) {
        (path.to_string(), body.to_string())
    }

    #[test]
    fn rule_filter_restricts_output() {
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )];
        let all = analyze_sources(&sources, &[], &[]);
        assert!(all.findings.iter().any(|f| f.rule == "DET-HASH"));
        assert!(all.findings.iter().any(|f| f.rule == "ERR-UNWRAP"));
        let only = analyze_sources(&sources, &["DET-HASH".to_string()], &[]);
        assert!(only.findings.iter().all(|f| f.rule == "DET-HASH"));
        assert_eq!(only.totals.findings, only.findings.len());
    }

    #[test]
    fn baseline_masks_by_key_not_line() {
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "\n\nuse std::collections::HashMap;\n",
        )];
        let first = analyze_sources(&sources, &[], &[]);
        assert_eq!(first.totals.findings, 1);
        let keys: Vec<String> = first.findings.iter().map(|f| f.baseline_key()).collect();
        let second = analyze_sources(&sources, &[], &keys);
        assert_eq!(second.totals.findings, 0);
        assert_eq!(second.totals.baselined, 1);
    }

    #[test]
    fn baseline_entries_mask_one_occurrence_each() {
        // Two byte-identical findings on different lines: one baseline key
        // must mask exactly one of them, not both (the pre-occurrence-index
        // behavior collapsed b to dead weight).
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "use std::collections::HashMap;\nuse std::collections::HashMap;\n",
        )];
        let all = analyze_sources(&sources, &[], &[]);
        assert_eq!(all.totals.findings, 2, "duplicates must not collapse");

        let one_key = vec![all.findings[0].baseline_key()];
        let partial = analyze_sources(&sources, &[], &one_key);
        assert_eq!(partial.totals.findings, 1, "one key masks one occurrence");
        assert_eq!(partial.totals.baselined, 1);

        let full = report::parse_baseline(&report::render_baseline(&all.findings));
        let none = analyze_sources(&sources, &[], &full);
        assert_eq!(none.totals.findings, 0);
        assert_eq!(none.totals.baselined, 2);
    }

    #[test]
    fn empty_reason_suppression_does_not_mask() {
        let sources = vec![src(
            "crates/routing/src/x.rs",
            "use std::collections::HashMap; // fcn-allow: DET-HASH\n",
        )];
        let got = analyze_sources(&sources, &[], &[]);
        assert_eq!(got.totals.findings, 1, "reason-less allow is ignored");
    }

    #[test]
    fn artifacts_from_phase1_match_direct_analysis() {
        let sources = vec![
            src(
                "crates/telemetry/src/names.rs",
                "pub const X: &str = \"x_total\";\n",
            ),
            src("crates/routing/src/x.rs", "fn f() { names::X; }\n"),
        ];
        let direct = analyze_sources(&sources, &[], &[]);
        let arts: Vec<FileArtifact> = sources.iter().map(|(p, t)| phase1(p, t)).collect();
        let via_artifacts = analyze_artifacts(&arts, &[], &[]);
        assert_eq!(direct.findings, via_artifacts.findings);
        assert_eq!(direct.totals, via_artifacts.totals);
    }
}
