//! Source model: a scrubbed, region-classified view of one `.rs` file.
//!
//! The analyzer is deliberately `syn`-free (it must keep working under the
//! vendored-shim constraint and before the workspace compiles), so every
//! rule runs over a *scrubbed* view of the source produced by a small
//! character-level state machine:
//!
//! * [`ScrubbedLine::code`] — the line with comment bodies and string/char
//!   *contents* blanked to spaces (the delimiting quotes survive, so
//!   call-shape patterns like `.add("` still match);
//! * [`ScrubbedLine::strings`] — only the in-string bytes (schema tags live
//!   here);
//! * [`ScrubbedLine::comment`] — only the comment bytes (suppressions and
//!   `// ordering:` justifications live here).
//!
//! On top of the scrub, [`SourceFile`] marks *test regions* — the brace
//! spans of items annotated `#[cfg(test)]` or `#[test]` — and collects
//! `// fcn-allow: RULE-ID reason` suppressions.

/// One physical line, split into its three lexical planes.
#[derive(Debug, Clone, Default)]
pub struct ScrubbedLine {
    /// Code with comments removed and string/char contents blanked.
    pub code: String,
    /// Only the bytes that were inside string literals.
    pub strings: String,
    /// Only the bytes that were inside comments.
    pub comment: String,
}

/// Broad file classification driving per-rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `crates/*/src` or the root `src/`.
    Lib,
    /// Binary targets (`src/bin/*`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/` directories).
    Test,
    /// Criterion benches (`benches/` directories).
    Bench,
    /// Example programs (`examples/`).
    Example,
    /// Non-Rust gate files (CI workflows): scanned for schema tags only.
    /// Their whole text lands in the strings plane; code and comment planes
    /// stay empty so no code rule can fire on them.
    Gate,
}

/// An inline `// fcn-allow: RULE-ID reason` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on (suppresses this line and the next).
    pub line: usize,
    /// Rule id the suppression names.
    pub rule: String,
    /// Free-text justification (must be non-empty to count).
    pub reason: String,
    /// Set by the analyzer when the suppression actually masked a finding.
    pub used: std::cell::Cell<bool>,
}

/// A fully scrubbed and classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Classification from the path shape.
    pub kind: FileKind,
    /// Owning crate (`fcn-emu` for the workspace root targets).
    pub crate_name: String,
    /// Scrubbed lines, index 0 = line 1.
    pub lines: Vec<ScrubbedLine>,
    /// True where the line sits inside a `#[cfg(test)]`/`#[test]` item.
    pub test_lines: Vec<bool>,
    /// All inline suppressions, in line order.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Scrub `text` (as found at workspace-relative `path`).
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let kind = classify(path);
        let crate_name = crate_of(path);
        let lines = if kind == FileKind::Gate {
            // Gate files are not Rust: expose the raw text as "strings" so
            // the schema-tag scanner sees it, and nothing else does.
            text.split('\n')
                .map(|l| ScrubbedLine {
                    code: String::new(),
                    strings: l.to_string(),
                    comment: String::new(),
                })
                .collect()
        } else {
            scrub(text)
        };
        let test_lines = mark_test_regions(&lines);
        let suppressions = collect_suppressions(&lines);
        SourceFile {
            path: path.to_string(),
            kind,
            crate_name,
            lines,
            test_lines,
            suppressions,
        }
    }

    /// Is 1-based `line` inside a test region (or is the whole file tests)?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.kind == FileKind::Test || self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Does an `fcn-allow` for `rule` cover 1-based `line`? Marks it used.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        for s in &self.suppressions {
            if s.rule == rule && (s.line == line || s.line + 1 == line) {
                s.used.set(true);
                return true;
            }
        }
        false
    }
}

/// Classify a workspace-relative path into a [`FileKind`].
pub fn classify(path: &str) -> FileKind {
    if !path.ends_with(".rs") {
        FileKind::Gate
    } else if path.starts_with("tests/") || path.contains("/tests/") {
        FileKind::Test
    } else if path.starts_with("benches/") || path.contains("/benches/") {
        FileKind::Bench
    } else if path.starts_with("examples/") || path.contains("/examples/") {
        FileKind::Example
    } else if path.contains("/src/bin/") || path.ends_with("src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Owning crate name for a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "fcn-emu".to_string()
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// The character-level scrub pass. Handles line/block (nested) comments,
/// string and raw-string literals, char literals vs lifetimes, and escapes.
fn scrub(text: &str) -> Vec<ScrubbedLine> {
    let mut out: Vec<ScrubbedLine> = Vec::new();
    let mut state = State::Code;
    for raw_line in text.split('\n') {
        let mut code = String::with_capacity(raw_line.len());
        let mut strings = String::with_capacity(raw_line.len());
        let mut comment = String::with_capacity(raw_line.len());
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        // Push one char into exactly one plane, space-padding the others.
        macro_rules! put {
            (code $c:expr) => {{
                code.push($c);
                strings.push(' ');
                comment.push(' ');
            }};
            (strings $c:expr) => {{
                code.push(' ');
                strings.push($c);
                comment.push(' ');
            }};
            (comment $c:expr) => {{
                code.push(' ');
                strings.push(' ');
                comment.push($c);
            }};
        }
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        state = State::LineComment;
                        put!(comment c);
                        i += 1;
                        put!(comment '/');
                        i += 1;
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(1);
                        put!(comment c);
                        i += 1;
                        put!(comment '*');
                        i += 1;
                        continue;
                    }
                    if c == '"' {
                        state = State::Str;
                        put!(code c);
                        i += 1;
                        continue;
                    }
                    // Raw strings: r"..." / r#"..."# / br#"..."# etc.
                    if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                        let mut j = i;
                        if c == 'b' && chars.get(j + 1) == Some(&'r') {
                            j += 1;
                        }
                        if chars[j] == 'r' || c == 'r' {
                            let mut hashes = 0u32;
                            let mut k = j + 1;
                            while chars.get(k) == Some(&'#') {
                                hashes += 1;
                                k += 1;
                            }
                            if chars.get(k) == Some(&'"') && (chars[j] == 'r') {
                                // emit the prefix as code, enter raw string
                                while i <= k {
                                    put!(code chars[i]);
                                    i += 1;
                                }
                                state = State::RawStr(hashes);
                                continue;
                            }
                        }
                    }
                    // Char literal vs lifetime.
                    if c == '\'' {
                        if let Some(len) = char_literal_len(&chars, i) {
                            // keep the quotes in code, blank the payload
                            put!(code '\'');
                            for &ch in &chars[(i + 1)..(i + len - 1)] {
                                put!(strings ch);
                            }
                            put!(code '\'');
                            i += len;
                            continue;
                        }
                        // lifetime: plain code
                        put!(code c);
                        i += 1;
                        continue;
                    }
                    put!(code c);
                    i += 1;
                }
                State::LineComment => {
                    put!(comment c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        put!(comment c);
                        i += 1;
                        put!(comment '/');
                        i += 1;
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        put!(comment c);
                        i += 1;
                        put!(comment '*');
                        i += 1;
                        state = State::BlockComment(depth + 1);
                        continue;
                    }
                    put!(comment c);
                    i += 1;
                }
                State::Str => {
                    if c == '\\' && i + 1 < chars.len() {
                        put!(strings c);
                        i += 1;
                        put!(strings chars[i]);
                        i += 1;
                        continue;
                    }
                    if c == '"' {
                        put!(code c);
                        i += 1;
                        state = State::Code;
                        continue;
                    }
                    put!(strings c);
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            put!(code '"');
                            i += 1;
                            for _ in 0..hashes {
                                put!(code '#');
                                i += 1;
                            }
                            state = State::Code;
                            continue;
                        }
                    }
                    put!(strings c);
                    i += 1;
                }
            }
        }
        // A line comment never spans lines; strings keep their state.
        if state == State::LineComment {
            state = State::Code;
        }
        out.push(ScrubbedLine {
            code,
            strings,
            comment,
        });
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[i]` opens a char literal, its total length (incl. quotes).
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            let esc = *chars.get(i + 2)?;
            if esc == 'u' {
                // '\u{…}': scan to the closing quote
                let mut j = i + 3;
                while j < chars.len() && j < i + 13 {
                    if chars[j] == '\'' {
                        return Some(j - i + 1);
                    }
                    j += 1;
                }
                None
            } else if chars.get(i + 3) == Some(&'\'') {
                Some(4) // '\n', '\\', '\''
            } else {
                None
            }
        }
        &c => {
            if chars.get(i + 2) == Some(&'\'') && c != '\'' {
                Some(3)
            } else {
                None
            }
        }
    }
}

/// Mark the brace spans of `#[cfg(test)]` / `#[test]` items.
fn mark_test_regions(lines: &[ScrubbedLine]) -> Vec<bool> {
    let mut marks = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Armed: saw a test attribute at `depth`, waiting for the item's `{`.
    let mut armed_at: Option<i64> = None;
    // Active test region: depth *before* its opening brace.
    let mut region_depth: Option<i64> = None;
    for (ln, line) in lines.iter().enumerate() {
        let code = &line.code;
        if region_depth.is_none()
            && (code.contains("#[cfg(test)]")
                || code.contains("#[cfg(all(test")
                || code.contains("#[test]")
                || code.contains("#[bench]"))
        {
            armed_at = Some(depth);
        }
        if region_depth.is_some() {
            marks[ln] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(a) = armed_at {
                        if depth == a {
                            region_depth = Some(depth);
                            armed_at = None;
                            marks[ln] = true;
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(r) = region_depth {
                        if depth == r {
                            region_depth = None;
                        }
                    }
                }
                ';' => {
                    // attribute applied to a brace-less item ended
                    if let Some(a) = armed_at {
                        if depth == a {
                            armed_at = None;
                            marks[ln] = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    marks
}

/// Collect `fcn-allow: RULE-ID reason` markers from the comment plane.
fn collect_suppressions(lines: &[ScrubbedLine]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let c = &line.comment;
        if let Some(pos) = c.find("fcn-allow:") {
            let rest = c[pos + "fcn-allow:".len()..].trim();
            let mut parts = rest.splitn(2, char::is_whitespace);
            let rule = parts.next().unwrap_or("").trim().to_string();
            let reason = parts.next().unwrap_or("").trim().to_string();
            if !rule.is_empty() {
                out.push(Suppression {
                    line: ln + 1,
                    rule,
                    reason,
                    used: std::cell::Cell::new(false),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_separates_planes() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1;";
        let lines = scrub(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].strings.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap here"));
        assert!(lines[0].code.contains("let x = \""));
    }

    #[test]
    fn scrub_handles_block_comments_and_raw_strings() {
        let src = "a /* panic!( \n still comment \n */ b r#\"panic!(\"# c";
        let lines = scrub(src);
        assert!(lines[0].code.contains('a'));
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[1].comment.contains("still comment"));
        assert!(lines[2].code.contains('b'));
        assert!(lines[2].code.contains('c'));
        assert!(!lines[2].code.contains("panic"));
        assert!(lines[2].strings.contains("panic!("));
    }

    #[test]
    fn scrub_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = x; }";
        let lines = scrub(src);
        // the quote inside the char literal must not open a string
        assert!(lines[0].code.contains("let d = x"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "// fcn-allow: DET-TIME bench timing\nlet t = 1;\nlet u = 2;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.suppressed("DET-TIME", 1));
        assert!(f.suppressed("DET-TIME", 2));
        assert!(!f.suppressed("DET-TIME", 3));
        assert!(!f.suppressed("DET-HASH", 2));
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/routing/src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/table1.rs"), FileKind::Bin);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("tests/chaos.rs"), FileKind::Test);
        assert_eq!(classify("crates/routing/tests/t.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/routing.rs"), FileKind::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify(".github/workflows/ci.yml"), FileKind::Gate);
    }

    #[test]
    fn gate_files_surface_text_as_strings_only() {
        let f = SourceFile::parse(
            ".github/workflows/ci.yml",
            "run: grep -q 'fcn-analyze/1' report.json\n",
        );
        assert_eq!(f.kind, FileKind::Gate);
        assert!(f.lines[0].strings.contains("fcn-analyze/1"));
        assert!(f.lines[0].code.is_empty());
    }
}
