//! The incremental analysis cache.
//!
//! `--cache PATH` persists every file's phase-1 artifact — its per-file
//! findings, suppressions, and [`FileIndex`] — keyed by an FNV-1a 64 hash
//! of the file's contents. On the next run, files whose hash is unchanged
//! skip scrubbing and phase 1 entirely; phase 2 (the cross-file rules)
//! always reruns over the merged index, so a cached run is byte-identical
//! to a cold one (CI gates on exactly that).
//!
//! The format is a line-oriented, tab-separated text file stamped
//! `fcn-analyze-cache/1`, with the analyzer's rule count baked into the
//! header: a cache written by a different rule set is discarded wholesale
//! rather than risk replaying stale findings. [`parse`] is the matching
//! validator — any malformed record invalidates the whole cache (a cold
//! re-analysis is always correct, so the failure mode is just slower).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::index::{
    Event, EventKind, FileIndex, FnItem, RankDef, Receiver, TagSite, TelConst, TelRef,
};
use crate::report::Finding;
use crate::rules::RULES;
use crate::{CachedSuppression, FileArtifact};

/// Schema tag stamped on the cache header line.
pub const CACHE_SCHEMA: &str = "fcn-analyze-cache/1";

/// FNV-1a 64-bit content hash: dependency-free, stable across platforms.
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn header() -> String {
    format!("{CACHE_SCHEMA} rules={}", RULES.len())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

fn opt(s: &Option<String>) -> String {
    s.clone().unwrap_or_else(|| "-".to_string())
}

fn parse_opt(s: &str) -> Option<String> {
    if s == "-" {
        None
    } else {
        Some(s.to_string())
    }
}

/// Render the cache body for `entries` (artifact + content hash), in the
/// given (already path-sorted) order.
pub fn render(entries: &[(&FileArtifact, u64)]) -> String {
    let mut out = header();
    out.push('\n');
    for (a, hash) in entries {
        let _ = writeln!(out, "file\t{}\t{hash:016x}", a.path);
        for f in &a.findings {
            let _ = writeln!(out, "find\t{}\t{}\t{}", f.line, f.rule, esc(&f.message));
        }
        for s in &a.suppressions {
            let _ = writeln!(out, "sup\t{}\t{}\t{}", s.line, s.rule, esc(&s.reason));
        }
        let ix = &a.index;
        let _ = writeln!(out, "val\t{}", u8::from(ix.has_validator));
        for t in &ix.schema_tags {
            let _ = writeln!(out, "tag\t{}\t{}", t.line, t.tag);
        }
        for r in &ix.rank_defs {
            let _ = writeln!(out, "rank\t{}\t{}\t{}", r.line, r.name, r.rank);
        }
        for c in &ix.tel_consts {
            let _ = writeln!(out, "tc\t{}\t{}\t{}", c.line, c.name, esc(&c.value));
        }
        for r in &ix.tel_refs {
            let _ = writeln!(out, "tr\t{}\t{}\t{}", r.line, u8::from(r.in_test), r.name);
        }
        for f in &ix.fns {
            let _ = writeln!(
                out,
                "fn\t{}\t{}\t{}\t{}",
                f.line,
                f.name,
                f.impl_type,
                u8::from(f.returns_guard)
            );
            for ev in &f.events {
                let payload = match &ev.kind {
                    EventKind::Open => "o".to_string(),
                    EventKind::Close => "c".to_string(),
                    EventKind::Acquire { rank, bound } => format!("a\t{rank}\t{}", opt(bound)),
                    EventKind::Call {
                        callee,
                        receiver,
                        bound,
                    } => {
                        let recv = match receiver {
                            Receiver::SelfDot => "s".to_string(),
                            Receiver::Method => "m".to_string(),
                            Receiver::Free => "f".to_string(),
                            Receiver::Type(t) => format!("t:{t}"),
                        };
                        format!("k\t{callee}\t{recv}\t{}", opt(bound))
                    }
                    EventKind::Wait => "w".to_string(),
                    EventKind::DropVar { var } => format!("d\t{var}"),
                    EventKind::Blocking { pat } => format!("b\t{pat}"),
                };
                let _ = writeln!(out, "ev\t{}\t{payload}", ev.line);
            }
        }
        out.push_str("end\n");
    }
    out
}

/// Parse a cache file back into `path -> (hash, artifact)`. Returns `None`
/// on any schema/shape mismatch (the caller then re-analyzes cold).
pub fn parse(text: &str) -> Option<BTreeMap<String, (u64, FileArtifact)>> {
    let mut lines = text.lines();
    if lines.next()? != header() {
        return None;
    }
    let mut map = BTreeMap::new();
    let mut cur: Option<(u64, FileArtifact)> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "file" => {
                if cur.is_some() || fields.len() != 3 {
                    return None;
                }
                let hash = u64::from_str_radix(fields[2], 16).ok()?;
                cur = Some((
                    hash,
                    FileArtifact {
                        path: fields[1].to_string(),
                        findings: Vec::new(),
                        suppressions: Vec::new(),
                        index: FileIndex::empty(fields[1]),
                    },
                ));
            }
            "end" => {
                let (hash, a) = cur.take()?;
                map.insert(a.path.clone(), (hash, a));
            }
            _ => {
                let (_, a) = cur.as_mut()?;
                match (fields[0], fields.len()) {
                    ("find", 4) => {
                        let rule = RULES.iter().find(|(r, _)| *r == fields[2])?.0;
                        a.findings.push(Finding {
                            path: a.path.clone(),
                            line: fields[1].parse().ok()?,
                            rule,
                            message: unesc(fields[3]),
                        });
                    }
                    ("sup", 4) => a.suppressions.push(CachedSuppression {
                        line: fields[1].parse().ok()?,
                        rule: fields[2].to_string(),
                        reason: unesc(fields[3]),
                    }),
                    ("val", 2) => a.index.has_validator = fields[1] == "1",
                    ("tag", 3) => a.index.schema_tags.push(TagSite {
                        line: fields[1].parse().ok()?,
                        tag: fields[2].to_string(),
                    }),
                    ("rank", 4) => a.index.rank_defs.push(RankDef {
                        line: fields[1].parse().ok()?,
                        name: fields[2].to_string(),
                        rank: fields[3].parse().ok()?,
                    }),
                    ("tc", 4) => a.index.tel_consts.push(TelConst {
                        line: fields[1].parse().ok()?,
                        name: fields[2].to_string(),
                        value: unesc(fields[3]),
                    }),
                    ("tr", 4) => a.index.tel_refs.push(TelRef {
                        line: fields[1].parse().ok()?,
                        in_test: fields[2] == "1",
                        name: fields[3].to_string(),
                    }),
                    ("fn", 5) => a.index.fns.push(FnItem {
                        line: fields[1].parse().ok()?,
                        name: fields[2].to_string(),
                        impl_type: fields[3].to_string(),
                        returns_guard: fields[4] == "1",
                        events: Vec::new(),
                    }),
                    ("ev", n) if n >= 3 => {
                        let kind = match (fields[2], fields.len()) {
                            ("o", 3) => EventKind::Open,
                            ("c", 3) => EventKind::Close,
                            ("w", 3) => EventKind::Wait,
                            ("a", 5) => EventKind::Acquire {
                                rank: fields[3].to_string(),
                                bound: parse_opt(fields[4]),
                            },
                            ("k", 6) => EventKind::Call {
                                callee: fields[3].to_string(),
                                receiver: match fields[4] {
                                    "s" => Receiver::SelfDot,
                                    "m" => Receiver::Method,
                                    "f" => Receiver::Free,
                                    t => Receiver::Type(t.strip_prefix("t:")?.to_string()),
                                },
                                bound: parse_opt(fields[5]),
                            },
                            ("d", 4) => EventKind::DropVar {
                                var: fields[3].to_string(),
                            },
                            ("b", 4) => EventKind::Blocking {
                                pat: fields[3].to_string(),
                            },
                            _ => return None,
                        };
                        a.index.fns.last_mut()?.events.push(Event {
                            line: fields[1].parse().ok()?,
                            kind,
                        });
                    }
                    _ => return None,
                }
            }
        }
    }
    if cur.is_some() {
        return None; // truncated file
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;

    fn artifact() -> FileArtifact {
        let src = "\
use std::collections::HashMap; // fcn-allow: DET-HASH fixture reason
impl A {
    fn lock(&self) -> RankedGuard<'_, u32> {
        lock_ranked(&self.m, ranks::SERVE_ADMISSION)
    }
}
fn f(s: &mut S) {
    s.inc(names::ROUTER_TICKS);
    if x {
        let g = lock_ranked(a, ranks::EXEC_SLOTS);
        drop(g);
    }
    let t = fs::read_to_string(\"fcn-demo/3\");
}
";
        phase1("crates/routing/src/x.rs", src)
    }

    #[test]
    fn cache_round_trips_losslessly() {
        let a = artifact();
        let hash = fnv1a64("whatever");
        let body = render(&[(&a, hash)]);
        let map = parse(&body).expect("self-rendered cache parses");
        let (h, back) = map.get("crates/routing/src/x.rs").expect("entry present");
        assert_eq!(*h, hash);
        assert_eq!(back, &a, "artifact survives the round trip bit-for-bit");
        // and rendering the parsed artifact reproduces the bytes
        assert_eq!(render(&[(back, *h)]), body);
    }

    #[test]
    fn wrong_header_or_truncation_invalidates() {
        let a = artifact();
        let body = render(&[(&a, 7)]);
        assert!(parse(&body.replace("cache/1", "cache/9")).is_none());
        assert!(parse(&body.replace("rules=", "rules=9")).is_none());
        let truncated: String = body.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(parse(&truncated).is_none());
    }

    #[test]
    fn escaping_survives_tabs_and_backslashes() {
        assert_eq!(unesc(&esc("a\tb\\c\nd")), "a\tb\\c\nd");
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }
}
