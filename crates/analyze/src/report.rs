//! Findings, baselines, and the `fcn-analyze/1` report format.
//!
//! Text diagnostics are `path:line: [RULE-ID] message`. JSON reports are
//! JSONL (matching the workspace's `fcn-telemetry/1` / `fcn-perfbench/3`
//! convention): one header object followed by one object per finding, every
//! line stamped with the [`REPORT_SCHEMA`] tag. [`validate_report`] is the
//! matching line-numbered validator, exercised by CI and the test suite.

use std::fmt::Write as _;

/// Schema tag stamped on every line of a `--format json` report.
pub const REPORT_SCHEMA: &str = "fcn-analyze/1";

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `DET-HASH`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Stable identity used for baseline matching: line numbers churn under
    /// unrelated edits, so the baseline keys on `(path, rule, message)`.
    pub fn baseline_key(&self) -> String {
        format!("{} [{}] {}", self.path, self.rule, self.message)
    }

    /// The canonical text diagnostic.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Parse a committed baseline file: one [`Finding::baseline_key`] per line,
/// `#` comments and blank lines ignored.
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Occurrence-indexed baseline keys for a `(path, line)`-ordered finding
/// slice: the first occurrence of a `(path, rule, message)` triple keeps
/// the plain [`Finding::baseline_key`]; the k-th repeat (same message on
/// another line — e.g. two identical `HashMap` imports) gets ` (#k)`
/// appended. Without the index, one baseline entry would silently swallow
/// every later identical finding in the same file.
pub fn occurrence_keys(findings: &[Finding]) -> Vec<String> {
    let mut counts: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let base = f.baseline_key();
            let n = counts.entry(base.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base} (#{n})")
            }
        })
        .collect()
}

/// Render a baseline file body for `--write-baseline`. Keys are
/// occurrence-indexed (see [`occurrence_keys`]) so identical findings on
/// different lines stay individually tracked.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut keys = occurrence_keys(findings);
    keys.sort();
    let mut out = String::from(
        "# fcn-analyze baseline: grandfathered findings, one `path [RULE] message`\n\
         # per line. New findings not listed here fail the run. Keep this empty.\n",
    );
    for k in &keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

/// Summary counters for one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Files scanned.
    pub files: usize,
    /// Findings reported (not suppressed, not baselined).
    pub findings: usize,
    /// Findings masked by inline `fcn-allow` suppressions.
    pub suppressed: usize,
    /// Findings masked by the committed baseline.
    pub baselined: usize,
}

/// Minimal JSON string escaping (the report never contains exotic payloads,
/// but paths and messages may contain quotes/backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the `fcn-analyze/1` JSONL report: header first, findings after,
/// sorted by `(path, line, rule)`.
pub fn render_json(findings: &[Finding], totals: Totals) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"header\",\"files\":{},\"findings\":{},\"suppressed\":{},\"baselined\":{}}}",
        totals.files, totals.findings, totals.suppressed, totals.baselined
    );
    for f in findings {
        let _ = writeln!(
            out,
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"finding\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message)
        );
    }
    out
}

/// Validate an `fcn-analyze/1` JSONL report, line-numbered on failure — the
/// same contract the workspace's BENCH and telemetry validators follow.
///
/// Checks: every line carries the schema tag; line 1 is the header; the
/// header's `findings` count matches the number of finding lines; every
/// finding line carries `rule`, `path`, `line`, and `message` fields.
pub fn validate_report(text: &str) -> Result<(), String> {
    let mut finding_lines = 0usize;
    let mut declared: Option<usize> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let tag = format!("\"schema\":\"{REPORT_SCHEMA}\"");
        if !line.contains(&tag) {
            return Err(format!(
                "line {n}: missing or wrong schema tag (want {REPORT_SCHEMA})"
            ));
        }
        if n == 1 {
            if !line.contains("\"kind\":\"header\"") {
                return Err(format!("line {n}: first line must be the header"));
            }
            declared = Some(
                extract_usize(line, "\"findings\":")
                    .ok_or_else(|| format!("line {n}: header missing integer `findings` field"))?,
            );
            for key in ["\"files\":", "\"suppressed\":", "\"baselined\":"] {
                if extract_usize(line, key).is_none() {
                    return Err(format!("line {n}: header missing integer `{key}` field"));
                }
            }
            continue;
        }
        if !line.contains("\"kind\":\"finding\"") {
            return Err(format!("line {n}: expected a finding line"));
        }
        for key in ["\"rule\":\"", "\"path\":\"", "\"message\":\""] {
            if !line.contains(key) {
                return Err(format!("line {n}: finding missing `{key}` field"));
            }
        }
        if extract_usize(line, "\"line\":").is_none() {
            return Err(format!("line {n}: finding missing integer `line` field"));
        }
        finding_lines += 1;
    }
    match declared {
        None => Err("empty report: missing header line".to_string()),
        Some(d) if d != finding_lines => Err(format!(
            "header declares {d} findings but report contains {finding_lines}"
        )),
        Some(_) => Ok(()),
    }
}

/// Render the findings as a SARIF 2.1.0 log (single run, one result per
/// finding, rule metadata from the analyzer's rule table sorted by id).
/// Deterministic: equal inputs produce identical bytes, which is what lets
/// CI `cmp` a cached run against a cold one.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut rules: Vec<(&str, &str)> = crate::rules::RULES.to_vec();
    rules.sort();
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"fcn-analyze\",\"version\":\"",
    );
    out.push_str(env!("CARGO_PKG_VERSION"));
    out.push_str("\",\"rules\":[");
    for (i, (id, why)) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            esc(id),
            esc(why)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = rules
            .iter()
            .position(|(id, _)| *id == f.rule)
            .unwrap_or(usize::MAX);
        let _ = write!(
            out,
            "{{\"ruleId\":\"{}\",\"ruleIndex\":{rule_index},\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":\
             {{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            esc(f.rule),
            esc(&f.message),
            esc(&f.path),
            f.line
        );
    }
    out.push_str("]}]}\n");
    out
}

/// Validate a SARIF log against the 2.1.0 required shape this emitter
/// produces: version, one run with a named tool driver and rule table, and
/// per-result ruleId/message/location fields in matching numbers.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    if !text.contains("\"version\":\"2.1.0\"") {
        return Err("missing required `version: 2.1.0`".to_string());
    }
    if !text.contains("\"runs\":[") {
        return Err("missing required `runs` array".to_string());
    }
    if !text.contains("\"driver\":{\"name\":\"fcn-analyze\"") {
        return Err("missing required tool.driver.name".to_string());
    }
    if !text.contains("\"rules\":[{\"id\":") {
        return Err("missing tool.driver.rules table".to_string());
    }
    let results = text.matches("\"ruleId\":").count();
    for (key, what) in [
        ("\"message\":{\"text\":", "message.text"),
        ("\"artifactLocation\":{\"uri\":", "artifactLocation.uri"),
        ("\"startLine\":", "region.startLine"),
    ] {
        let got = text.matches(key).count();
        if got != results {
            return Err(format!(
                "{results} results but {got} `{what}` fields: every result needs \
                 ruleId, message.text, and a physical location"
            ));
        }
    }
    Ok(())
}

fn extract_usize(line: &str, key: &str) -> Option<usize> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "DET-TIME",
                message: "wall clock in simulation path".into(),
            },
            Finding {
                path: "crates/y/src/a.rs".into(),
                line: 9,
                rule: "ERR-UNWRAP",
                message: "`.unwrap()` in library code".into(),
            },
        ]
    }

    #[test]
    fn json_report_round_trips_through_validator() {
        let totals = Totals {
            files: 2,
            findings: 2,
            suppressed: 0,
            baselined: 0,
        };
        let text = render_json(&sample(), totals);
        validate_report(&text).expect("self-emitted report validates");
    }

    #[test]
    fn validator_rejects_wrong_tag_and_count_mismatch() {
        let good = render_json(
            &sample(),
            Totals {
                files: 2,
                findings: 2,
                ..Totals::default()
            },
        );
        let bad_tag = good.replace("fcn-analyze/1", "fcn-analyze/9");
        let err = validate_report(&bad_tag).unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        let truncated: String = good.lines().take(2).map(|l| format!("{l}\n")).collect();
        let err = validate_report(&truncated).unwrap_err();
        assert!(
            err.contains("declares 2 findings but report contains 1"),
            "{err}"
        );
    }

    #[test]
    fn validator_reports_missing_fields_with_line_numbers() {
        let text = format!(
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"header\",\"files\":1,\"findings\":1,\"suppressed\":0,\"baselined\":0}}\n{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"finding\",\"rule\":\"X\",\"line\":1}}\n"
        );
        let err = validate_report(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn baseline_round_trip() {
        let body = render_baseline(&sample());
        let keys = parse_baseline(&body);
        assert_eq!(keys.len(), 2);
        assert!(keys[0].contains("[DET-TIME]"));
    }

    #[test]
    fn occurrence_keys_distinguish_identical_findings() {
        let mut fs = sample();
        let mut dup = fs[0].clone();
        dup.line = 17;
        fs.push(dup);
        let keys = occurrence_keys(&fs);
        assert_eq!(keys.len(), 3);
        assert_eq!(keys[0], fs[0].baseline_key());
        assert_eq!(keys[2], format!("{} (#2)", fs[0].baseline_key()));
        // a baseline written from these findings masks each exactly once
        let body = render_baseline(&fs);
        assert_eq!(parse_baseline(&body).len(), 3);
    }

    #[test]
    fn sarif_log_validates_and_is_deterministic() {
        let text = render_sarif(&sample());
        validate_sarif(&text).expect("self-emitted SARIF validates");
        assert_eq!(text, render_sarif(&sample()), "byte-stable");
        assert!(text.contains("\"version\":\"2.1.0\""));
        assert!(text.contains("\"ruleId\":\"DET-TIME\""));
        assert!(text.contains("\"uri\":\"crates/x/src/lib.rs\""));
        assert!(text.contains("\"startLine\":3"));
    }

    #[test]
    fn sarif_validator_rejects_broken_logs() {
        let good = render_sarif(&sample());
        assert!(validate_sarif(&good.replace("2.1.0", "2.0.0")).is_err());
        assert!(validate_sarif(&good.replacen("\"startLine\":", "\"line\":", 1)).is_err());
    }
}
