//! Findings, baselines, and the `fcn-analyze/1` report format.
//!
//! Text diagnostics are `path:line: [RULE-ID] message`. JSON reports are
//! JSONL (matching the workspace's `fcn-telemetry/1` / `fcn-perfbench/3`
//! convention): one header object followed by one object per finding, every
//! line stamped with the [`REPORT_SCHEMA`] tag. [`validate_report`] is the
//! matching line-numbered validator, exercised by CI and the test suite.

use std::fmt::Write as _;

/// Schema tag stamped on every line of a `--format json` report.
pub const REPORT_SCHEMA: &str = "fcn-analyze/1";

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `DET-HASH`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Stable identity used for baseline matching: line numbers churn under
    /// unrelated edits, so the baseline keys on `(path, rule, message)`.
    pub fn baseline_key(&self) -> String {
        format!("{} [{}] {}", self.path, self.rule, self.message)
    }

    /// The canonical text diagnostic.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Parse a committed baseline file: one [`Finding::baseline_key`] per line,
/// `#` comments and blank lines ignored.
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Render a baseline file body for `--write-baseline`.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut keys: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
    keys.sort();
    keys.dedup();
    let mut out = String::from(
        "# fcn-analyze baseline: grandfathered findings, one `path [RULE] message`\n\
         # per line. New findings not listed here fail the run. Keep this empty.\n",
    );
    for k in &keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

/// Summary counters for one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Files scanned.
    pub files: usize,
    /// Findings reported (not suppressed, not baselined).
    pub findings: usize,
    /// Findings masked by inline `fcn-allow` suppressions.
    pub suppressed: usize,
    /// Findings masked by the committed baseline.
    pub baselined: usize,
}

/// Minimal JSON string escaping (the report never contains exotic payloads,
/// but paths and messages may contain quotes/backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the `fcn-analyze/1` JSONL report: header first, findings after,
/// sorted by `(path, line, rule)`.
pub fn render_json(findings: &[Finding], totals: Totals) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"header\",\"files\":{},\"findings\":{},\"suppressed\":{},\"baselined\":{}}}",
        totals.files, totals.findings, totals.suppressed, totals.baselined
    );
    for f in findings {
        let _ = writeln!(
            out,
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"finding\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message)
        );
    }
    out
}

/// Validate an `fcn-analyze/1` JSONL report, line-numbered on failure — the
/// same contract the workspace's BENCH and telemetry validators follow.
///
/// Checks: every line carries the schema tag; line 1 is the header; the
/// header's `findings` count matches the number of finding lines; every
/// finding line carries `rule`, `path`, `line`, and `message` fields.
pub fn validate_report(text: &str) -> Result<(), String> {
    let mut finding_lines = 0usize;
    let mut declared: Option<usize> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let tag = format!("\"schema\":\"{REPORT_SCHEMA}\"");
        if !line.contains(&tag) {
            return Err(format!(
                "line {n}: missing or wrong schema tag (want {REPORT_SCHEMA})"
            ));
        }
        if n == 1 {
            if !line.contains("\"kind\":\"header\"") {
                return Err(format!("line {n}: first line must be the header"));
            }
            declared = Some(
                extract_usize(line, "\"findings\":")
                    .ok_or_else(|| format!("line {n}: header missing integer `findings` field"))?,
            );
            for key in ["\"files\":", "\"suppressed\":", "\"baselined\":"] {
                if extract_usize(line, key).is_none() {
                    return Err(format!("line {n}: header missing integer `{key}` field"));
                }
            }
            continue;
        }
        if !line.contains("\"kind\":\"finding\"") {
            return Err(format!("line {n}: expected a finding line"));
        }
        for key in ["\"rule\":\"", "\"path\":\"", "\"message\":\""] {
            if !line.contains(key) {
                return Err(format!("line {n}: finding missing `{key}` field"));
            }
        }
        if extract_usize(line, "\"line\":").is_none() {
            return Err(format!("line {n}: finding missing integer `line` field"));
        }
        finding_lines += 1;
    }
    match declared {
        None => Err("empty report: missing header line".to_string()),
        Some(d) if d != finding_lines => Err(format!(
            "header declares {d} findings but report contains {finding_lines}"
        )),
        Some(_) => Ok(()),
    }
}

fn extract_usize(line: &str, key: &str) -> Option<usize> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "DET-TIME",
                message: "wall clock in simulation path".into(),
            },
            Finding {
                path: "crates/y/src/a.rs".into(),
                line: 9,
                rule: "ERR-UNWRAP",
                message: "`.unwrap()` in library code".into(),
            },
        ]
    }

    #[test]
    fn json_report_round_trips_through_validator() {
        let totals = Totals {
            files: 2,
            findings: 2,
            suppressed: 0,
            baselined: 0,
        };
        let text = render_json(&sample(), totals);
        validate_report(&text).expect("self-emitted report validates");
    }

    #[test]
    fn validator_rejects_wrong_tag_and_count_mismatch() {
        let good = render_json(
            &sample(),
            Totals {
                files: 2,
                findings: 2,
                ..Totals::default()
            },
        );
        let bad_tag = good.replace("fcn-analyze/1", "fcn-analyze/9");
        let err = validate_report(&bad_tag).unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        let truncated: String = good.lines().take(2).map(|l| format!("{l}\n")).collect();
        let err = validate_report(&truncated).unwrap_err();
        assert!(
            err.contains("declares 2 findings but report contains 1"),
            "{err}"
        );
    }

    #[test]
    fn validator_reports_missing_fields_with_line_numbers() {
        let text = format!(
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"header\",\"files\":1,\"findings\":1,\"suppressed\":0,\"baselined\":0}}\n{{\"schema\":\"{REPORT_SCHEMA}\",\"kind\":\"finding\",\"rule\":\"X\",\"line\":1}}\n"
        );
        let err = validate_report(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn baseline_round_trip() {
        let body = render_baseline(&sample());
        let keys = parse_baseline(&body);
        assert_eq!(keys.len(), 2);
        assert!(keys[0].contains("[DET-TIME]"));
    }
}
