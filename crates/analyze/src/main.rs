//! `fcn-analyze` — run the workspace invariant checker.
//!
//! ```text
//! fcn-analyze [--rule ID]... [--format text|json|sarif] [--baseline PATH]
//!             [--no-baseline] [--write-baseline] [--cache PATH]
//!             [--root DIR] [--list] [paths…]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 I/O or usage error (matching the
//! workspace's `CmdError::Run`/`CmdError::Io` convention).

use std::path::PathBuf;
use std::process::ExitCode;

use fcn_analyze::{analyze_workspace_cached, report, rules, walk};

struct Opts {
    rules: Vec<String>,
    format: String,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    cache: Option<PathBuf>,
    root: Option<PathBuf>,
    list: bool,
    paths: Vec<String>,
}

fn usage() -> &'static str {
    "usage: fcn-analyze [--rule ID]... [--format text|json|sarif] [--baseline PATH]\n\
     \x20                  [--no-baseline] [--write-baseline] [--cache PATH]\n\
     \x20                  [--root DIR] [--list] [paths...]\n\
     \n\
     Checks the workspace against the determinism/error-typing/schema rules.\n\
     Suppress one finding with `// fcn-allow: RULE-ID reason` on or above the\n\
     offending line. `--cache PATH` reuses per-file results for unchanged\n\
     files (cross-file rules always rerun; output is identical either way).\n\
     Exit codes: 0 clean, 1 findings, 2 I/O or usage error."
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        rules: Vec::new(),
        format: "text".to_string(),
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        cache: None,
        root: None,
        list: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rule" => {
                let id = it.next().ok_or("--rule needs a rule id")?.clone();
                if !rules::known_rule(&id) {
                    return Err(format!(
                        "unknown rule `{id}` (try --list for the rule table)"
                    ));
                }
                o.rules.push(id);
            }
            "--format" => {
                let f = it.next().ok_or("--format needs text|json|sarif")?.clone();
                if f != "text" && f != "json" && f != "sarif" {
                    return Err(format!("unknown format `{f}` (want text|json|sarif)"));
                }
                o.format = f;
            }
            "--baseline" => {
                o.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--no-baseline" => o.no_baseline = true,
            "--write-baseline" => o.write_baseline = true,
            "--cache" => {
                o.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a path")?));
            }
            "--root" => {
                o.root = Some(PathBuf::from(it.next().ok_or("--root needs a dir")?));
            }
            "--list" => o.list = true,
            "--help" | "-h" => return Err("help".to_string()),
            p if p.starts_with('-') => return Err(format!("unknown flag `{p}`")),
            p => o.paths.push(p.to_string()),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("fcn-analyze: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list {
        // Sorted by id: the table is pinned by a CLI test, and sorted output
        // stays stable as rules are appended to the declaration table.
        let mut table: Vec<(&str, &str)> = rules::RULES.to_vec();
        table.sort_by_key(|(id, _)| *id);
        for (id, why) in table {
            println!("{id:<20} {why}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("fcn-analyze: could not find a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    // Baseline: explicit path, else `<root>/fcn-analyze.baseline` if present.
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("fcn-analyze.baseline"));
    let baseline: Vec<String> = if opts.no_baseline {
        Vec::new()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => report::parse_baseline(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                eprintln!("fcn-analyze: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    };

    let analysis = match analyze_workspace_cached(
        &root,
        &opts.paths,
        &opts.rules,
        &baseline,
        opts.cache.as_deref(),
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fcn-analyze: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let body = report::render_baseline(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!("fcn-analyze: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "fcn-analyze: wrote {} ({} entries)",
            baseline_path.display(),
            analysis.totals.findings
        );
        return ExitCode::SUCCESS;
    }

    match opts.format.as_str() {
        "json" => {
            let text = report::render_json(&analysis.findings, analysis.totals);
            // The emitter validates its own output before printing — the
            // same discipline the BENCH writers follow.
            if let Err(e) = report::validate_report(&text) {
                eprintln!("fcn-analyze: internal error: emitted invalid report: {e}");
                return ExitCode::from(2);
            }
            print!("{text}");
        }
        "sarif" => {
            let text = report::render_sarif(&analysis.findings);
            if let Err(e) = report::validate_sarif(&text) {
                eprintln!("fcn-analyze: internal error: emitted invalid SARIF: {e}");
                return ExitCode::from(2);
            }
            print!("{text}");
        }
        _ => {
            for f in &analysis.findings {
                println!("{}", f.render());
            }
            eprintln!(
                "fcn-analyze: {} finding(s), {} suppressed, {} baselined, {} files",
                analysis.totals.findings,
                analysis.totals.suppressed,
                analysis.totals.baselined,
                analysis.totals.files
            );
        }
    }

    if analysis.totals.findings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
