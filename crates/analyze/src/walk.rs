//! Workspace file discovery.
//!
//! Collects every `.rs` file under the workspace root, skipping `target/`,
//! `vendor/` (the shims are externally-specified API surface, not simulation
//! code), and VCS internals, plus the CI workflow files under
//! `.github/workflows/` (gate files: `SCHEMA-DRIFT` cross-checks the `grep`
//! pins in CI against the schema tags the code actually emits). Paths are
//! normalized to forward-slash, root-relative form so findings and
//! baselines are machine-independent.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "node_modules"];

/// Recursively collect `.rs` files under `root`, returning
/// `(relative_path, contents)` pairs sorted by path.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let text = fs::read_to_string(&path)?;
                files.push((relative(root, &path), text));
            }
        }
    }
    // Gate files: CI workflows carry schema-tag pins that SCHEMA-DRIFT
    // checks against the emitters. `.github` is a skipped dot-dir in the
    // walk above, so pick the workflows up explicitly.
    let workflows = root.join(".github").join("workflows");
    if let Ok(entries) = fs::read_dir(&workflows) {
        let mut paths: Vec<PathBuf> = entries
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        paths.sort();
        for path in paths {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".yml") || name.ends_with(".yaml") {
                let text = fs::read_to_string(&path)?;
                files.push((relative(root, &path), text));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Root-relative, forward-slash path.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_skips_vendor() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("inside the fcn workspace");
        let files = collect_sources(&root).expect("workspace readable");
        assert!(files.iter().any(|(p, _)| p == "crates/analyze/src/walk.rs"));
        assert!(
            files
                .iter()
                .any(|(p, _)| p.starts_with(".github/workflows/") && p.ends_with(".yml")),
            "CI workflow gate files are collected"
        );
        assert!(!files.iter().any(|(p, _)| p.starts_with("vendor/")));
        assert!(!files.iter().any(|(p, _)| p.contains("/target/")));
        let mut sorted = files.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(
            sorted,
            files.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
            "deterministic order"
        );
    }
}
