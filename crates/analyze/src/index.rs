//! Phase 1 of the two-phase analysis: a lightweight per-file symbol index.
//!
//! [`build_index`] walks the scrubbed code plane of one [`SourceFile`] and
//! extracts everything the cross-file rules in [`crate::graph`] need,
//! without ever materializing an AST (the analyzer stays `syn`-free):
//!
//! * function items with their enclosing `impl` type and a compact *event
//!   stream* — brace opens/closes, ranked lock acquisitions, calls, condvar
//!   waits, explicit `drop(var)` releases, and blocking-I/O sites — that
//!   phase 2 replays to simulate lock nesting;
//! * `LockRank::new(N, …)` constant definitions (the declared lock order);
//! * the telemetry name table (`pub const` entries of `names.rs`) and every
//!   `names::X` reference elsewhere;
//! * versioned `fcn-*/N` schema-tag literals (including CI gate files);
//! * whether the file carries a validator-shaped function.
//!
//! The index is also the unit of the incremental cache: it round-trips
//! losslessly through [`crate::cache`], so a cache hit skips scrubbing and
//! phase 1 entirely while phase 2 still sees the full workspace picture.

use crate::rules::{has_prefix_token, schema_tags_in};
use crate::source::{FileKind, SourceFile};

/// Path of the one canonical telemetry name table.
pub const NAMES_PATH: &str = "crates/telemetry/src/names.rs";

/// How a call site names its callee; drives cross-file resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.f()` — resolve against the enclosing `impl` type.
    SelfDot,
    /// `x.f()` — resolve only if `f` is unambiguous in the crate.
    Method,
    /// `Type::f()` — resolve against that `impl` type.
    Type(String),
    /// `f()` — resolve against free functions, same file first.
    Free,
}

/// One entry in a function's replayable event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A `{` inside the function body (scope push).
    Open,
    /// A `}` inside the function body (scope pop: releases block-scoped guards).
    Close,
    /// A `lock_ranked(…, ranks::RANK)` acquisition. `bound` is the `let`
    /// variable holding the guard, if any; an unbound acquire is a
    /// statement temporary and holds nothing afterwards.
    Acquire {
        /// The `ranks::` constant named at the site (empty if unresolved).
        rank: String,
        /// `let` binding receiving the guard, when present.
        bound: Option<String>,
    },
    /// A call that phase 2 may resolve and inline one level.
    Call {
        /// Callee identifier as written.
        callee: String,
        /// Call shape (see [`Receiver`]).
        receiver: Receiver,
        /// `let` binding receiving the result, when present.
        bound: Option<String>,
    },
    /// A condvar wait (`wait_timeout_ranked` or a raw `.wait*()`).
    Wait,
    /// An explicit `drop(var)` releasing a bound guard early.
    DropVar {
        /// The dropped variable.
        var: String,
    },
    /// A blocking socket/fs/process call (for BLOCKING-IN-HANDLER).
    Blocking {
        /// The matched pattern, e.g. `fs::read_to_string`.
        pat: String,
    },
}

/// One event at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// 1-based line of the event.
    pub line: usize,
    /// What happened there.
    pub kind: EventKind,
}

/// One indexed function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name as written.
    pub name: String,
    /// Enclosing `impl` type name, or empty for free functions.
    pub impl_type: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the signature mentions a `*Guard` type (guard-returning
    /// wrappers act as lock acquisitions at their call sites).
    pub returns_guard: bool,
    /// The body's event stream, in source order.
    pub events: Vec<Event>,
}

/// A `LockRank::new(N, …)` constant definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDef {
    /// Constant identifier, e.g. `SERVE_ADMISSION`.
    pub name: String,
    /// Declared numeric rank.
    pub rank: u32,
    /// 1-based definition line.
    pub line: usize,
}

/// A `pub const`/`pub static` declaration in the telemetry names table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelConst {
    /// Constant identifier.
    pub name: String,
    /// The metric-name string value (empty for non-string entries like
    /// `ALL`, which are declared-known but not dead-checked).
    pub value: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// A `names::X` reference outside the table itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelRef {
    /// Referenced constant identifier.
    pub name: String,
    /// 1-based reference line.
    pub line: usize,
    /// Whether the reference sits in a test region (tests keep a name
    /// alive but never justify an unknown one).
    pub in_test: bool,
}

/// A versioned schema-tag literal occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagSite {
    /// The full tag, e.g. `fcn-analyze/1`.
    pub tag: String,
    /// 1-based line of the literal.
    pub line: usize,
}

/// Everything phase 2 needs to know about one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileIndex {
    /// Workspace-relative path.
    pub path: String,
    /// Kind derived from the path (never serialized; recomputed on load).
    pub kind: FileKind,
    /// Owning crate name.
    pub crate_name: String,
    /// Indexed functions (non-test regions only).
    pub fns: Vec<FnItem>,
    /// Declared lock ranks.
    pub rank_defs: Vec<RankDef>,
    /// Telemetry name-table entries (only populated for [`NAMES_PATH`]).
    pub tel_consts: Vec<TelConst>,
    /// `names::X` references.
    pub tel_refs: Vec<TelRef>,
    /// Schema-tag literal sites (Lib/Bin string plane; whole text for
    /// [`FileKind::Gate`] files).
    pub schema_tags: Vec<TagSite>,
    /// Whether any line starts a `from_*`/`validate*`/`parse*` identifier.
    pub has_validator: bool,
}

impl FileIndex {
    /// An empty index for `path`, with kind and crate derived from it.
    pub fn empty(path: &str) -> FileIndex {
        FileIndex {
            path: path.to_string(),
            kind: crate::source::classify(path),
            crate_name: crate::source::crate_of(path),
            fns: Vec::new(),
            rank_defs: Vec::new(),
            tel_consts: Vec::new(),
            tel_refs: Vec::new(),
            schema_tags: Vec::new(),
            has_validator: false,
        }
    }
}

/// Keywords that look like calls when followed by `(` but never are.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "mut", "as", "in", "move", "ref",
    "else", "unsafe", "dyn", "impl", "where", "use", "pub", "mod", "struct", "enum", "trait",
    "type", "const", "static", "crate", "super", "Self", "self", "box", "async", "await", "true",
    "false", "break", "continue",
];

/// Method names so common on std containers/iterators that a `x.name()`
/// call is never worth resolving (it would alias unrelated helpers). Only
/// applies to [`Receiver::Method`]; `self.f()` and `Type::f()` always index.
const COMMON_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clone",
    "cloned",
    "copied",
    "iter",
    "iter_mut",
    "into_iter",
    "entry",
    "or_insert",
    "or_default",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "strip_suffix",
    "trim_start_matches",
    "trim_end_matches",
    "extend",
    "drain",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "dedup",
    "join",
    "next",
    "take",
    "replace",
    "min",
    "max",
    "abs",
    "trim",
    "split",
    "splitn",
    "split_once",
    "find",
    "position",
    "parse",
    "to_string",
    "to_owned",
    "as_str",
    "as_bytes",
    "as_ref",
    "as_mut",
    "as_deref",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "ok_or",
    "ok_or_else",
    "err",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "filter",
    "filter_map",
    "collect",
    "fold",
    "sum",
    "count",
    "any",
    "all",
    "rev",
    "zip",
    "chain",
    "enumerate",
    "flat_map",
    "flatten",
    "last",
    "first",
    "push_str",
    "chars",
    "bytes",
    "lines",
    "keys",
    "values",
    "cmp",
    "eq",
    "ne",
    "display",
    "fmt",
    "into",
    "from",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
];

/// `(qualifier, method)` pairs that count as blocking calls.
const BLOCKING_PAIRS: &[(&str, &str)] = &[
    ("File", "open"),
    ("File", "create"),
    ("fs", "read"),
    ("fs", "read_to_string"),
    ("fs", "write"),
    ("fs", "copy"),
    ("fs", "remove_file"),
    ("fs", "create_dir_all"),
    ("fs", "read_dir"),
    ("fs", "metadata"),
    ("TcpStream", "connect"),
    ("UdpSocket", "bind"),
    ("thread", "sleep"),
    ("Command", "new"),
];

#[derive(Clone, Copy, PartialEq)]
enum Link {
    None,
    Dot,
    Colons,
}

struct PendingFn {
    name: String,
    line: usize,
    in_test: bool,
    has_guard: bool,
}

struct Indexer<'a> {
    sf: &'a SourceFile,
    out: FileIndex,
    depth: i32,
    fn_stack: Vec<(usize, i32)>,
    impl_stack: Vec<(String, i32)>,
    pending_fn: Option<PendingFn>,
    pending_impl: Option<Vec<String>>,
    angle: i32,
    expect_fn_name: bool,
    expect_binding: bool,
    binding_var: Option<String>,
    pending_rank: Option<(usize, usize)>,
    pending_drop: Option<(usize, usize)>,
    prev_word: String,
    link: Link,
}

/// Build the phase-1 index for one scrubbed file.
pub fn build_index(sf: &SourceFile) -> FileIndex {
    let mut ix = Indexer {
        sf,
        out: FileIndex::empty(&sf.path),
        depth: 0,
        fn_stack: Vec::new(),
        impl_stack: Vec::new(),
        pending_fn: None,
        pending_impl: None,
        angle: 0,
        expect_fn_name: false,
        expect_binding: false,
        binding_var: None,
        pending_rank: None,
        pending_drop: None,
        prev_word: String::new(),
        link: Link::None,
    };
    for (i, line) in sf.lines.iter().enumerate() {
        let ln = i + 1;
        ix.scan_line_extras(ln, line);
        ix.scan_code(ln, &line.code);
    }
    ix.out.has_validator = sf.lines.iter().any(|l| {
        ["from_", "validate", "parse"]
            .iter()
            .any(|t| has_prefix_token(&l.code, t))
    });
    ix.out
}

impl Indexer<'_> {
    /// Line-level extraction that does not need the token walk: rank
    /// definitions, the telemetry table, and schema tags.
    fn scan_line_extras(&mut self, ln: usize, line: &crate::source::ScrubbedLine) {
        let in_test = self.sf.is_test_line(ln);
        if !in_test {
            if let Some(at) = line.code.find("LockRank::new(") {
                if let Some(name) = ident_after(&line.code, "const ") {
                    let digits: String = line.code[at + "LockRank::new(".len()..]
                        .chars()
                        .skip_while(|c| *c == ' ')
                        .take_while(char::is_ascii_digit)
                        .collect();
                    if let Ok(rank) = digits.parse::<u32>() {
                        self.out.rank_defs.push(RankDef {
                            name,
                            rank,
                            line: ln,
                        });
                    }
                }
            }
            if self.out.path == NAMES_PATH
                && (line.code.contains("pub const ") || line.code.contains("pub static "))
            {
                let name = ident_after(&line.code, "const ")
                    .or_else(|| ident_after(&line.code, "static "));
                if let Some(name) = name {
                    self.out.tel_consts.push(TelConst {
                        name,
                        value: line.strings.trim().to_string(),
                        line: ln,
                    });
                }
            }
        }
        match self.out.kind {
            FileKind::Gate => {
                for tag in schema_tags_in(&line.strings) {
                    self.out.schema_tags.push(TagSite { tag, line: ln });
                }
            }
            FileKind::Lib | FileKind::Bin if !in_test => {
                for tag in schema_tags_in(&line.strings) {
                    self.out.schema_tags.push(TagSite { tag, line: ln });
                }
            }
            _ => {}
        }
    }

    fn in_fn(&self) -> bool {
        !self.fn_stack.is_empty()
    }

    fn push_event(&mut self, ln: usize, kind: EventKind) -> Option<(usize, usize)> {
        let (fn_idx, _) = *self.fn_stack.last()?;
        let events = &mut self.out.fns[fn_idx].events;
        events.push(Event { line: ln, kind });
        Some((fn_idx, events.len() - 1))
    }

    /// Consume the armed `let` binding, if any (first event on the
    /// statement claims it).
    fn take_binding(&mut self) -> Option<String> {
        self.binding_var.take()
    }

    fn end_statement(&mut self) {
        self.expect_binding = false;
        self.binding_var = None;
        self.pending_rank = None;
        self.pending_drop = None;
    }

    /// The token walk over one line's code plane. Structural tracking
    /// (braces, `fn`/`impl` headers) always runs; events are only recorded
    /// inside non-test function bodies.
    fn scan_code(&mut self, ln: usize, code: &str) {
        let in_test = self.sf.is_test_line(ln);
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let w: String = chars[start..i].iter().collect();
                let mut j = i;
                while j < chars.len() && chars[j] == ' ' {
                    j += 1;
                }
                let is_macro = chars.get(j) == Some(&'!');
                let is_call = chars.get(j) == Some(&'(');
                self.word(ln, in_test, &w, is_call, is_macro);
                self.prev_word = w;
                self.link = Link::None;
                continue;
            }
            match c {
                '.' => self.link = Link::Dot,
                ':' if chars.get(i + 1) == Some(&':') => {
                    self.link = Link::Colons;
                    i += 2;
                    continue;
                }
                '<' if self.pending_impl.is_some() => self.angle += 1,
                '>' if self.pending_impl.is_some() => self.angle -= 1,
                '{' => self.on_open(ln, in_test),
                '}' => self.on_close(ln, in_test),
                ';' => self.on_semi(),
                '(' => {
                    if self.expect_binding {
                        // `let (a, b) = …`: pattern bindings are untracked.
                        self.expect_binding = false;
                    }
                    self.link = Link::None;
                    self.prev_word.clear();
                }
                ' ' => {}
                _ => {
                    self.link = Link::None;
                    self.prev_word.clear();
                }
            }
            i += 1;
        }
    }

    fn word(&mut self, ln: usize, in_test: bool, w: &str, is_call: bool, is_macro: bool) {
        // --- declaration tracking -----------------------------------------
        if self.expect_fn_name {
            self.expect_fn_name = false;
            self.pending_fn = Some(PendingFn {
                name: w.to_string(),
                line: ln,
                in_test,
                has_guard: false,
            });
            return;
        }
        if let Some(pf) = self.pending_fn.as_mut() {
            // Between `fn name` and `{`: every word is part of the
            // signature (params, return type, where clause) — record guard
            // types, emit nothing.
            if w.contains("Guard") {
                pf.has_guard = true;
            }
            return;
        }
        if w == "fn" {
            self.expect_fn_name = true;
            return;
        }
        if w == "impl" && self.pending_impl.is_none() {
            self.pending_impl = Some(Vec::new());
            self.angle = 0;
            return;
        }
        if let Some(words) = self.pending_impl.as_mut() {
            if self.angle == 0 {
                words.push(w.to_string());
            }
            return;
        }
        // --- `let` binding capture ----------------------------------------
        if w == "let" {
            self.expect_binding = true;
            return;
        }
        if self.expect_binding {
            if w == "mut" {
                return;
            }
            self.expect_binding = false;
            // Uppercase-initial = enum/struct pattern (`let Some(x) = …`):
            // the guard is then block-scoped but unnamed; treat as unbound.
            if !w.starts_with(char::is_uppercase) {
                self.binding_var = Some(w.to_string());
            }
            // fall through: the word may itself matter (rare)
        }
        // `names::X` references count from anywhere, tests included — a
        // test exercising a metric keeps its name alive.
        if self.link == Link::Colons && self.prev_word == "names" {
            self.out.tel_refs.push(TelRef {
                name: w.to_string(),
                line: ln,
                in_test,
            });
        }
        // --- event extraction ---------------------------------------------
        if !self.in_fn() || in_test {
            return;
        }
        // Fill a pending `ranks::X` / `drop(x)` operand.
        if self.link == Link::Colons && self.prev_word == "ranks" {
            if let Some((f, e)) = self.pending_rank.take() {
                if let EventKind::Acquire { rank, .. } = &mut self.out.fns[f].events[e].kind {
                    *rank = w.to_string();
                }
            }
        }
        if let Some((f, e)) = self.pending_drop.take() {
            if let EventKind::DropVar { var } = &mut self.out.fns[f].events[e].kind {
                *var = w.to_string();
            }
        }
        if !is_call || is_macro {
            return;
        }
        if w == "lock_ranked" {
            let bound = self.take_binding();
            self.pending_rank = self.push_event(
                ln,
                EventKind::Acquire {
                    rank: String::new(),
                    bound,
                },
            );
            return;
        }
        if w == "wait_timeout_ranked"
            || (self.link == Link::Dot && matches!(w, "wait" | "wait_timeout" | "wait_while"))
        {
            self.push_event(ln, EventKind::Wait);
            return;
        }
        if w == "drop" && self.link == Link::None {
            self.pending_drop = self.push_event(ln, EventKind::DropVar { var: String::new() });
            return;
        }
        if self.link == Link::Colons {
            for (q, m) in BLOCKING_PAIRS {
                if self.prev_word == *q && w == *m {
                    self.push_event(
                        ln,
                        EventKind::Blocking {
                            pat: format!("{q}::{m}"),
                        },
                    );
                    return;
                }
            }
        }
        if w == "stdin" && self.link == Link::None {
            self.push_event(
                ln,
                EventKind::Blocking {
                    pat: "stdin".to_string(),
                },
            );
            return;
        }
        if KEYWORDS.contains(&w) || w.starts_with(char::is_uppercase) {
            return;
        }
        let receiver = match self.link {
            Link::Dot if self.prev_word == "self" => Receiver::SelfDot,
            Link::Dot => {
                if COMMON_METHODS.contains(&w) {
                    return;
                }
                Receiver::Method
            }
            Link::Colons => {
                if self.prev_word.starts_with(char::is_uppercase) {
                    Receiver::Type(self.prev_word.clone())
                } else {
                    // module-qualified free call (`helper::f()`): resolution
                    // would need a module map; skip.
                    return;
                }
            }
            Link::None => Receiver::Free,
        };
        let bound = self.take_binding();
        self.push_event(
            ln,
            EventKind::Call {
                callee: w.to_string(),
                receiver,
                bound,
            },
        );
    }

    fn on_open(&mut self, _ln: usize, _in_test: bool) {
        if let Some(pf) = self.pending_fn.take() {
            if !pf.in_test {
                self.out.fns.push(FnItem {
                    name: pf.name,
                    impl_type: self
                        .impl_stack
                        .last()
                        .map(|(t, _)| t.clone())
                        .unwrap_or_default(),
                    line: pf.line,
                    returns_guard: pf.has_guard,
                    events: Vec::new(),
                });
                self.fn_stack.push((self.out.fns.len() - 1, self.depth));
            }
            // test-region fn: body braces still tracked via depth, but the
            // fn_stack entry is omitted so no events are recorded.
        } else if let Some(words) = self.pending_impl.take() {
            let ty = words
                .iter()
                .position(|w| w == "for")
                .and_then(|p| words.get(p + 1))
                .or_else(|| words.first())
                .cloned()
                .unwrap_or_default();
            self.impl_stack.push((ty, self.depth));
        } else if self.in_fn() && !_in_test {
            self.push_event(_ln, EventKind::Open);
        }
        self.depth += 1;
        self.binding_var = None;
        self.expect_binding = false;
        self.prev_word.clear();
        self.link = Link::None;
    }

    fn on_close(&mut self, _ln: usize, _in_test: bool) {
        self.depth -= 1;
        if let Some((ty, d)) = self.impl_stack.last() {
            let _ = ty;
            if *d == self.depth {
                self.impl_stack.pop();
            }
        }
        if let Some((_, d)) = self.fn_stack.last() {
            if *d == self.depth {
                self.fn_stack.pop();
                self.end_statement();
            } else if !_in_test {
                self.push_event(_ln, EventKind::Close);
            }
        }
        self.prev_word.clear();
        self.link = Link::None;
    }

    fn on_semi(&mut self) {
        if self.pending_fn.is_some() {
            // trait method declaration without a body
            self.pending_fn = None;
        }
        self.end_statement();
        self.prev_word.clear();
        self.link = Link::None;
    }
}

/// The identifier immediately following `marker` in `code`, if any.
fn ident_after(code: &str, marker: &str) -> Option<String> {
    let at = code.find(marker)? + marker.len();
    let rest = code[at..].trim_start();
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(path: &str, src: &str) -> FileIndex {
        build_index(&SourceFile::parse(path, src))
    }

    #[test]
    fn indexes_fns_with_impl_types_and_guards() {
        let src = "\
struct A;
impl A {
    fn lock(&self) -> RankedGuard<'_, u32> {
        lock_ranked(&self.m, ranks::SERVE_ADMISSION)
    }
    fn plain(&self) {}
}
fn free() {}
";
        let ix = index("crates/serve/src/x.rs", src);
        assert_eq!(ix.fns.len(), 3);
        assert_eq!(ix.fns[0].name, "lock");
        assert_eq!(ix.fns[0].impl_type, "A");
        assert!(ix.fns[0].returns_guard);
        assert_eq!(
            ix.fns[0].events,
            vec![Event {
                line: 4,
                kind: EventKind::Acquire {
                    rank: "SERVE_ADMISSION".into(),
                    bound: None
                }
            }]
        );
        assert_eq!(ix.fns[2].name, "free");
        assert_eq!(ix.fns[2].impl_type, "");
    }

    #[test]
    fn impl_for_resolves_to_the_implementing_type() {
        let src = "\
impl<'a, T> Drop for Token<T> {
    fn drop(&mut self) {
        self.release();
    }
}
";
        let ix = index("crates/x/src/lib.rs", src);
        assert_eq!(ix.fns[0].impl_type, "Token");
        assert_eq!(
            ix.fns[0].events,
            vec![Event {
                line: 3,
                kind: EventKind::Call {
                    callee: "release".into(),
                    receiver: Receiver::SelfDot,
                    bound: None
                }
            }]
        );
    }

    #[test]
    fn bindings_waits_and_drops_are_tracked() {
        let src = "\
fn f(a: &M, cv: &C) {
    let mut g = lock_ranked(a, ranks::EXEC_WATCHDOG);
    let (g2, _) = wait_timeout_ranked(cv, g, d);
    drop(g2);
}
";
        let ix = index("crates/x/src/lib.rs", src);
        let kinds: Vec<&EventKind> = ix.fns[0].events.iter().map(|e| &e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &EventKind::Acquire {
                    rank: "EXEC_WATCHDOG".into(),
                    bound: Some("g".into())
                },
                &EventKind::Wait,
                &EventKind::DropVar { var: "g2".into() },
            ]
        );
    }

    #[test]
    fn multiline_acquire_still_resolves_its_rank() {
        let src = "\
fn f(a: &M) {
    let g = lock_ranked(
        a,
        ranks::TEL_COUNTERS,
    );
}
";
        let ix = index("crates/x/src/lib.rs", src);
        assert_eq!(
            ix.fns[0].events[0].kind,
            EventKind::Acquire {
                rank: "TEL_COUNTERS".into(),
                bound: Some("g".into())
            }
        );
    }

    #[test]
    fn blocking_calls_and_common_methods() {
        let src = "\
fn f(p: &str) {
    let text = fs::read_to_string(p);
    text.map(|t| t.len());
    helper(p);
}
";
        let ix = index("crates/serve/src/x.rs", src);
        let kinds: Vec<&EventKind> = ix.fns[0].events.iter().map(|e| &e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &EventKind::Blocking {
                    pat: "fs::read_to_string".into()
                },
                &EventKind::Call {
                    callee: "helper".into(),
                    receiver: Receiver::Free,
                    bound: None
                },
            ]
        );
    }

    #[test]
    fn rank_defs_tel_consts_and_tags() {
        let lockdep = "\
pub const SERVE_ADMISSION: LockRank = LockRank::new(10, \"serve.admission\");
pub const SERVE_REGISTRY: LockRank = LockRank::new(20, \"serve.registry\");
";
        let ix = index("crates/telemetry/src/lockdep.rs", lockdep);
        assert_eq!(ix.rank_defs.len(), 2);
        assert_eq!(ix.rank_defs[0].name, "SERVE_ADMISSION");
        assert_eq!(ix.rank_defs[0].rank, 10);

        let names = "\
pub const ROUTER_TICKS: &str = \"router_ticks\";
pub static ALL: &[&str] = &[ROUTER_TICKS];
";
        let nix = index(NAMES_PATH, names);
        assert_eq!(nix.tel_consts.len(), 2);
        assert_eq!(nix.tel_consts[0].value, "router_ticks");
        assert_eq!(nix.tel_consts[1].name, "ALL");
        assert_eq!(nix.tel_consts[1].value, "");

        let user = "fn f(s: &mut S) { s.inc(names::ROUTER_TICKS); }\n";
        let uix = index("crates/routing/src/lib.rs", user);
        assert_eq!(uix.tel_refs.len(), 1);
        assert_eq!(uix.tel_refs[0].name, "ROUTER_TICKS");

        let tagged = "const S: &str = \"fcn-demo/3\";\nfn validate_s() {}\n";
        let tix = index("crates/x/src/lib.rs", tagged);
        assert_eq!(tix.schema_tags.len(), 1);
        assert_eq!(tix.schema_tags[0].tag, "fcn-demo/3");
        assert!(tix.has_validator);
    }

    #[test]
    fn test_regions_are_not_indexed() {
        let src = "\
fn live() { lock_ranked(a, ranks::EXEC_SLOTS); }
#[cfg(test)]
mod tests {
    fn fixture() { lock_ranked(b, ranks::SERVE_ADMISSION); }
}
";
        let ix = index("crates/x/src/lib.rs", src);
        assert_eq!(ix.fns.len(), 1);
        assert_eq!(ix.fns[0].name, "live");
    }
}
