//! Property tests for the lexical scrubber.
//!
//! The scrubber is the foundation every rule stands on: if a string
//! payload leaks into the code plane, `ERR-UNWRAP` starts firing on
//! `"unwrap()"` inside test fixtures; if code leaks into the comment
//! plane, suppressions stop matching. These tests generate random
//! sequences of adversarial lexical pieces — raw strings with hash
//! delimiters, byte strings, nested block comments, multiline literals —
//! and check the two invariants the scrub guarantees:
//!
//! 1. **Shape**: each plane of every line has exactly the raw line's
//!    char count, and each position is owned by exactly one plane (the
//!    other two hold a space).
//! 2. **Separation**: marker characters planted only in code (`K`),
//!    string payloads (`S`), and comment bodies (`Z`) never surface in
//!    another plane.

use fcn_analyze::source::SourceFile;
use proptest::prelude::*;

/// One adversarial lexical piece. `K` appears only in code, `S` only in
/// string payloads, `Z` only in comment bodies — the separation invariant
/// below leans on that.
fn piece(kind: u8, param: u8) -> String {
    let h = (param % 3) as usize + 1; // 1..=3 raw-string hashes
    match kind % 12 {
        0 => "let K = 1;".to_string(),
        1 => format!("\"S{}\"", "S".repeat(param as usize % 4)),
        // escaped quote and backslash inside a plain string
        2 => "\"S\\\"S\\\\S\"".to_string(),
        3 => "b\"S\\nS\"".to_string(),
        // raw string whose payload embeds a quote + fewer hashes than the
        // delimiter, so it must NOT terminate early
        4 => {
            let embedded = format!("\"{}", "#".repeat(h - 1));
            format!("r{0}\"S{embedded}S\"{0}", "#".repeat(h))
        }
        5 => "r\"SSS\"".to_string(),
        6 => format!("br{0}\"SS\"{0}", "#".repeat(h)),
        // line comment with in-comment string/block-comment openers; the
        // composer ends the line after it
        7 => "// Z \"Z\" /* Z".to_string(),
        8 => "/* Z /* Z */ Z */".to_string(),
        // multiline nested block comment
        9 => "/* Z\n Z /* Z\n Z */ Z */ let K = 2;".to_string(),
        // char literal holding a quote, plus a lifetime
        10 => "let K: &'a K = 'x'; let q = '\"';".to_string(),
        // multiline plain string
        11 => "\"S\nS S\"".to_string(),
        _ => unreachable!(),
    }
}

fn compose(pieces: &[(u8, u8)]) -> String {
    let mut out = String::new();
    for &(k, p) in pieces {
        let text = piece(k, p);
        let is_line_comment = text.starts_with("//");
        out.push_str(&text);
        // A line comment swallows the rest of the line; everything else is
        // self-terminating and joins with a space.
        out.push(if is_line_comment { '\n' } else { ' ' });
    }
    out.push('\n');
    out
}

/// Check both scrub invariants over `src`.
fn check_invariants(src: &str) -> Result<(), String> {
    let f = SourceFile::parse("crates/routing/src/fx.rs", src);
    let raws: Vec<&str> = src.split('\n').collect();
    if f.lines.len() != raws.len() {
        return Err(format!("line count {} != {}", f.lines.len(), raws.len()));
    }
    for (ln, (raw, line)) in raws.iter().zip(&f.lines).enumerate() {
        let rc: Vec<char> = raw.chars().collect();
        let cc: Vec<char> = line.code.chars().collect();
        let sc: Vec<char> = line.strings.chars().collect();
        let mc: Vec<char> = line.comment.chars().collect();
        if cc.len() != rc.len() || sc.len() != rc.len() || mc.len() != rc.len() {
            return Err(format!(
                "line {}: plane lengths {}/{}/{} != raw {} in {raw:?}",
                ln + 1,
                cc.len(),
                sc.len(),
                mc.len(),
                rc.len()
            ));
        }
        for i in 0..rc.len() {
            let owners: Vec<char> = [cc[i], sc[i], mc[i]]
                .into_iter()
                .filter(|c| *c != ' ')
                .collect();
            if rc[i] == ' ' {
                if !owners.is_empty() {
                    return Err(format!(
                        "line {} col {}: space owned by {owners:?} in {raw:?}",
                        ln + 1,
                        i + 1
                    ));
                }
            } else if owners.len() != 1 || owners[0] != rc[i] {
                return Err(format!(
                    "line {} col {}: char {:?} owned by {owners:?} in {raw:?}",
                    ln + 1,
                    i + 1,
                    rc[i]
                ));
            }
        }
    }
    let all_code: String = f.lines.iter().map(|l| l.code.as_str()).collect();
    let all_strings: String = f.lines.iter().map(|l| l.strings.as_str()).collect();
    let all_comment: String = f.lines.iter().map(|l| l.comment.as_str()).collect();
    for (plane, text, banned) in [
        ("code", &all_code, ['S', 'Z']),
        ("strings", &all_strings, ['K', 'Z']),
        ("comment", &all_comment, ['K', 'S']),
    ] {
        for b in banned {
            if text.contains(b) {
                return Err(format!("marker {b:?} leaked into the {plane} plane"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_piece_sequences_scrub_cleanly(
        pieces in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24)
    ) {
        if let Err(msg) = check_invariants(&compose(&pieces)) {
            let src = compose(&pieces);
            prop_assert!(false, "{msg}\nsource:\n{src}");
        }
    }
}

// ------------------------------------------------------- fixture edge cases

#[test]
fn raw_string_payload_stays_out_of_code() {
    let f = SourceFile::parse(
        "crates/routing/src/fx.rs",
        "let t = r##\"unwrap() \"# still S\"##; let K = 1;\n",
    );
    assert!(!f.lines[0].code.contains("unwrap"));
    assert!(f.lines[0].strings.contains("unwrap()"));
    assert!(
        f.lines[0].strings.contains("\"# still S"),
        "a quote with too few hashes must not close the raw string"
    );
    assert!(f.lines[0].code.contains("let K = 1;"));
}

#[test]
fn byte_strings_scrub_like_strings() {
    let f = SourceFile::parse(
        "crates/routing/src/fx.rs",
        "let a = b\"panic!\"; let b2 = br#\"panic!\"#; let K = 0;\n",
    );
    assert!(!f.lines[0].code.contains("panic"));
    assert_eq!(f.lines[0].strings.matches("panic!").count(), 2);
    assert!(f.lines[0].code.contains("let K = 0;"));
}

#[test]
fn nested_block_comments_track_depth_across_lines() {
    let src = "a /* Z /* Z\n Z */ Z\n Z */ b\n";
    let f = SourceFile::parse("crates/routing/src/fx.rs", src);
    assert!(f.lines[0].code.contains('a'));
    assert!(
        f.lines[1].code.trim().is_empty(),
        "inner close stays comment"
    );
    assert!(f.lines[2].code.contains('b'), "outer close returns to code");
    assert!(f.lines[2].comment.contains('Z'));
}

#[test]
fn multiline_string_state_survives_newlines() {
    let src = "let t = \"S\nunwrap() S\n S\"; x.unwrap();\n";
    let f = SourceFile::parse("crates/routing/src/fx.rs", src);
    assert!(f.lines[1].strings.contains("unwrap()"));
    assert!(f.lines[1].code.trim().is_empty());
    assert!(
        f.lines[2].code.contains(".unwrap()"),
        "code resumes after close"
    );
}

#[test]
fn raw_identifiers_and_suffixed_names_do_not_open_raw_strings() {
    let src = "let r#match = K; let br2 = K; let b = K; r#match;\n";
    let f = SourceFile::parse("crates/routing/src/fx.rs", src);
    assert!(f.lines[0].code.contains("r#match"));
    assert!(f.lines[0].strings.trim().is_empty());
}
