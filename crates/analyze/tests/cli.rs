//! End-to-end CLI contract tests for the `fcn-analyze` binary.
//!
//! Everything here runs the real binary (`CARGO_BIN_EXE_fcn-analyze`)
//! against throwaway scratch workspaces, pinning the parts of the tool
//! that CI and editor integrations script against: the 0/1/2 exit-code
//! contract, `--rule` filtering, the sorted `--list` table, SARIF output,
//! and cold-vs-cached byte identity.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_fcn-analyze")
}

/// A throwaway workspace under the OS temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root =
            std::env::temp_dir().join(format!("fcn-analyze-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("scratch root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        Scratch { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let p = self.root.join(rel);
        std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdirs");
        std::fs::write(p, text).expect("write scratch file");
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("spawn fcn-analyze")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

/// The declared lock order, in the shape the indexer scans for.
const RANKS_FIXTURE: &str = "\
pub const SERVE_ADMISSION: LockRank = LockRank::new(10, \"serve.admission\");
pub const SERVE_REGISTRY: LockRank = LockRank::new(20, \"serve.registry\");
";

// ----------------------------------------------------------- exit contract

#[test]
fn clean_tree_exits_zero() {
    let s = Scratch::new("clean");
    s.write(
        "crates/routing/src/ok.rs",
        "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
    );
    let out = s.run(&[]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout(&out), "", "clean run prints no findings");
}

#[test]
fn findings_exit_one() {
    let s = Scratch::new("findings");
    s.write(
        "crates/routing/src/bad.rs",
        "use std::collections::HashMap;\n",
    );
    let out = s.run(&[]);
    assert_eq!(code(&out), 1);
    assert!(stdout(&out).contains("[DET-HASH]"));
    assert!(stdout(&out).contains("crates/routing/src/bad.rs:1"));
}

#[test]
fn usage_errors_exit_two() {
    let s = Scratch::new("usage");
    assert_eq!(code(&s.run(&["--definitely-not-a-flag"])), 2);
    assert_eq!(code(&s.run(&["--rule", "NO-SUCH-RULE"])), 2);
    assert_eq!(code(&s.run(&["--format", "xml"])), 2);
}

// ----------------------------------------------------------- rule filtering

#[test]
fn rule_filter_limits_findings_and_exit() {
    let s = Scratch::new("filter");
    s.write(
        "crates/routing/src/bad.rs",
        "use std::collections::HashMap;\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let all = s.run(&[]);
    assert_eq!(code(&all), 1);
    assert!(stdout(&all).contains("[DET-HASH]"));
    assert!(stdout(&all).contains("[ERR-UNWRAP]"));

    let only_hash = s.run(&["--rule", "DET-HASH"]);
    assert_eq!(code(&only_hash), 1);
    assert!(stdout(&only_hash).contains("[DET-HASH]"));
    assert!(!stdout(&only_hash).contains("[ERR-UNWRAP]"));

    // Filtering to a rule this tree never violates is a clean run.
    let only_time = s.run(&["--rule", "DET-TIME"]);
    assert_eq!(code(&only_time), 0);
    assert_eq!(stdout(&only_time), "");
}

// ----------------------------------------------------------------- --list

#[test]
fn list_is_sorted_and_pins_the_rule_table() {
    let out = Command::new(bin()).arg("--list").output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    let ids: Vec<&str> = text
        .lines()
        .map(|l| l.split_whitespace().next().expect("rule id column"))
        .collect();
    let expected = vec![
        "ATOMIC-DOC",
        "BLOCKING-IN-HANDLER",
        "CHAOS-SEED",
        "DET-HASH",
        "DET-RNG",
        "DET-TIME",
        "ERR-UNWRAP",
        "LOCK-ORDER",
        "SCHEMA-DRIFT",
        "SCHEMA-TAG",
        "SERVE-DEADLINE",
        "SHARD-MERGE",
        "TEL-DEAD",
        "TEL-NAME",
    ];
    assert_eq!(ids, expected, "--list must stay sorted and complete");
    for line in text.lines() {
        assert!(
            line.split_whitespace().count() > 1,
            "every rule carries a one-line summary: {line:?}"
        );
    }
}

// ------------------------------------------------------------- LOCK-ORDER

#[test]
fn seeded_lock_order_violation_exits_one() {
    // The same scenario the CI `analysis` job seeds: a scratch tree whose
    // declared order says ADMISSION(10) < REGISTRY(20), with a function
    // that nests them inverted.
    let s = Scratch::new("lockorder");
    s.write("crates/telemetry/src/lockdep.rs", RANKS_FIXTURE);
    s.write(
        "crates/serve/src/bad.rs",
        "pub fn inverted(&self) {\n    let r = lock_ranked(&self.registry, ranks::SERVE_REGISTRY);\n    let a = lock_ranked(&self.admission, ranks::SERVE_ADMISSION);\n    drop(a);\n    drop(r);\n}\n",
    );
    let out = s.run(&["--rule", "LOCK-ORDER"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("[LOCK-ORDER]"), "got: {text}");
    assert!(
        text.contains("SERVE_ADMISSION"),
        "names the bad acquisition"
    );
    assert!(text.contains("crates/serve/src/bad.rs:3"), "points at it");

    // Same tree, correctly ordered nesting: clean.
    s.write(
        "crates/serve/src/bad.rs",
        "pub fn ordered(&self) {\n    let a = lock_ranked(&self.admission, ranks::SERVE_ADMISSION);\n    let r = lock_ranked(&self.registry, ranks::SERVE_REGISTRY);\n    drop(r);\n    drop(a);\n}\n",
    );
    assert_eq!(code(&s.run(&["--rule", "LOCK-ORDER"])), 0);
}

// ------------------------------------------------------------------ SARIF

#[test]
fn sarif_output_validates_and_carries_findings() {
    let s = Scratch::new("sarif");
    s.write(
        "crates/routing/src/bad.rs",
        "use std::collections::HashMap;\n",
    );
    let out = s.run(&["--format", "sarif"]);
    assert_eq!(code(&out), 1, "SARIF format keeps the exit contract");
    let text = stdout(&out);
    fcn_analyze::report::validate_sarif(&text).expect("emitted SARIF validates");
    assert!(text.contains("\"ruleId\":\"DET-HASH\""));
    assert!(text.contains("\"uri\":\"crates/routing/src/bad.rs\""));
    assert!(text.contains("\"startLine\":1"));

    // A clean tree still emits a valid (empty-results) log, exit 0.
    let s2 = Scratch::new("sarif-clean");
    s2.write("crates/routing/src/ok.rs", "pub fn f() {}\n");
    let out2 = s2.run(&["--format", "sarif"]);
    assert_eq!(code(&out2), 0);
    fcn_analyze::report::validate_sarif(&stdout(&out2)).expect("clean SARIF validates");
    assert!(stdout(&out2).contains("\"results\":[]"));
}

// ------------------------------------------------------------------ cache

#[test]
fn cache_is_transparent_and_invalidates_on_edit() {
    let s = Scratch::new("cache");
    s.write(
        "crates/routing/src/bad.rs",
        "use std::collections::HashMap;\n",
    );
    s.write("crates/routing/src/ok.rs", "pub fn f() {}\n");
    let cache = s.root.join("analysis.cache");
    let cache_arg = cache.to_str().expect("utf8 path");

    let cold = s.run(&["--format", "sarif", "--cache", cache_arg]);
    assert_eq!(code(&cold), 1);
    assert!(cache.exists(), "cache file written");

    let warm = s.run(&["--format", "sarif", "--cache", cache_arg]);
    assert_eq!(code(&warm), 1);
    assert_eq!(
        stdout(&cold),
        stdout(&warm),
        "cold and cached runs must be byte-identical"
    );

    // Editing the file changes its hash: the stale artifact must not replay.
    s.write("crates/routing/src/bad.rs", "pub fn fixed() {}\n");
    let edited = s.run(&["--format", "sarif", "--cache", cache_arg]);
    assert_eq!(code(&edited), 0, "fix is visible through the cache");
    assert!(stdout(&edited).contains("\"results\":[]"));

    // A corrupted cache is discarded, not trusted.
    std::fs::write(&cache, "fcn-analyze-cache/1 rules=999\ngarbage\n").expect("corrupt");
    let recovered = s.run(&["--format", "sarif", "--cache", cache_arg]);
    assert_eq!(code(&recovered), 0);
    assert_eq!(stdout(&edited), stdout(&recovered));
}

// --------------------------------------------------------------- baseline

#[test]
fn write_baseline_then_rerun_is_clean() {
    let s = Scratch::new("baseline");
    s.write(
        "crates/routing/src/bad.rs",
        "use std::collections::HashMap;\nuse std::collections::HashMap;\n",
    );
    assert_eq!(code(&s.run(&[])), 1);
    assert_eq!(code(&s.run(&["--write-baseline"])), 0);
    let out = s.run(&[]);
    assert_eq!(code(&out), 0, "baselined tree is clean");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        stderr.contains("2 baselined"),
        "both duplicates masked: {stderr}"
    );
    // --no-baseline resurfaces everything.
    assert_eq!(code(&s.run(&["--no-baseline"])), 1);
}
