//! Per-rule fixture tests for fcn-analyze.
//!
//! Every rule gets three fixtures — firing, clean, and suppressed — driven
//! through [`fcn_analyze::analyze_sources`], the same entry point the CLI
//! walker funnels into, so what these tests prove is exactly what
//! `fcn-analyze` enforces on the real tree. The final test self-runs the
//! analyzer over the committed workspace and asserts zero non-baseline
//! findings: the tree must stay clean under its own checker.

use fcn_analyze::{analyze_sources, Analysis};

/// Run the analyzer over in-memory fixtures with no filter and no baseline.
fn run(sources: &[(&str, &str)]) -> Analysis {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
        .collect();
    analyze_sources(&owned, &[], &[])
}

/// Rule ids of all findings, in report order.
fn rule_ids(a: &Analysis) -> Vec<&'static str> {
    a.findings.iter().map(|f| f.rule).collect()
}

/// Assert the analysis holds exactly one finding, for `rule`, on `line`.
fn assert_single(a: &Analysis, rule: &str, line: usize) {
    assert_eq!(
        a.findings.len(),
        1,
        "expected exactly one {rule} finding, got: {:?}",
        a.findings
    );
    assert_eq!(a.findings[0].rule, rule);
    assert_eq!(a.findings[0].line, line, "finding: {:?}", a.findings[0]);
}

/// Assert a fixture produced no findings at all.
fn assert_clean(a: &Analysis) {
    assert!(
        a.findings.is_empty(),
        "expected a clean run, got: {:?}",
        a.findings
    );
}

/// Assert the fixture's only finding was masked by an `fcn-allow`.
fn assert_suppressed(a: &Analysis) {
    assert!(
        a.findings.is_empty(),
        "suppression failed to mask: {:?}",
        a.findings
    );
    assert_eq!(a.totals.suppressed, 1, "totals: {:?}", a.totals);
}

// ---------------------------------------------------------------- DET-HASH

#[test]
fn det_hash_fires_in_simulation_crates() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "use std::collections::HashMap;\n",
    )]);
    assert_single(&a, "DET-HASH", 1);
}

#[test]
fn det_hash_clean_for_btree_and_for_non_sim_crates() {
    // BTreeMap in a simulation crate: the sanctioned replacement.
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
    )]);
    assert_clean(&a);
    // HashMap outside the simulation boundary (tooling crate) is allowed.
    let b = run(&[(
        "crates/analyze/src/fx.rs",
        "use std::collections::HashMap;\n",
    )]);
    assert_clean(&b);
}

#[test]
fn det_hash_suppressed_with_reason() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "use std::collections::HashMap; // fcn-allow: DET-HASH keys are sorted before every iteration\n",
    )]);
    assert_suppressed(&a);
}

// ---------------------------------------------------------------- DET-TIME

#[test]
fn det_time_fires_outside_the_allowlist() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )]);
    assert_single(&a, "DET-TIME", 1);
}

#[test]
fn det_time_clean_in_allowlisted_measurement_files() {
    // span.rs is the canonical wall-clock measurement site.
    let a = run(&[(
        "crates/telemetry/src/span.rs",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )]);
    assert_clean(&a);
    // the bench crate is measurement by definition.
    let b = run(&[(
        "crates/bench/src/fx.rs",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )]);
    assert_clean(&b);
}

#[test]
fn det_time_suppressed_from_the_line_above() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "// fcn-allow: DET-TIME diagnostic-only deadline, stripped from table output\npub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )]);
    assert_suppressed(&a);
}

// ----------------------------------------------------------------- DET-RNG

#[test]
fn det_rng_fires_everywhere_including_tests() {
    let a = run(&[(
        "crates/topology/src/fx.rs",
        "pub fn f() { let _r = rand::thread_rng(); }\n",
    )]);
    assert_single(&a, "DET-RNG", 1);
    // The reproducibility contract covers integration tests too.
    let b = run(&[(
        "crates/topology/tests/fx.rs",
        "fn f() { let _r = rand::thread_rng(); }\n",
    )]);
    assert_single(&b, "DET-RNG", 1);
}

#[test]
fn det_rng_clean_for_seeded_rng() {
    let a = run(&[(
        "crates/topology/src/fx.rs",
        "pub fn f(seed: u64) -> u64 { splitmix(seed) }\n",
    )]);
    assert_clean(&a);
}

#[test]
fn det_rng_suppressed_with_reason() {
    let a = run(&[(
        "crates/topology/src/fx.rs",
        "pub fn f() { let _r = rand::thread_rng(); } // fcn-allow: DET-RNG fixture exercising the rng shim\n",
    )]);
    assert_suppressed(&a);
}

// -------------------------------------------------------------- ERR-UNWRAP

#[test]
fn err_unwrap_fires_in_library_code() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    assert_single(&a, "ERR-UNWRAP", 1);
}

#[test]
fn err_unwrap_clean_inside_cfg_test_modules_and_test_files() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        r#"pub fn f(x: Option<u32>) -> Option<u32> { x }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::f(Some(1)).unwrap(), 1);
    }
}
"#,
    )]);
    assert_clean(&a);
    let b = run(&[(
        "crates/core/tests/fx.rs",
        "fn t(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    assert_clean(&b);
}

#[test]
fn err_unwrap_suppressed_with_reason() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // fcn-allow: ERR-UNWRAP caller guarantees Some by construction\n",
    )]);
    assert_suppressed(&a);
}

// -------------------------------------------------------------- SCHEMA-TAG

#[test]
fn schema_tag_fires_for_untagged_emitter() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn emit(v: &u32) -> String { serde_json::to_string(v).unwrap_or_default() }\n",
    )]);
    assert_single(&a, "SCHEMA-TAG", 1);
}

#[test]
fn schema_tag_clean_when_tag_and_validator_present() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        r#"pub const FX_SCHEMA: &str = "fcn-fixture/1";

pub fn emit(v: &u32) -> String { serde_json::to_string(v).unwrap_or_default() }

pub fn from_json(s: &str) -> bool { s.contains(FX_SCHEMA) }
"#,
    )]);
    assert_clean(&a);
}

#[test]
fn schema_tag_workspace_half_fires_on_duplicates_and_missing_validators() {
    // The same tag as a literal in two files: the non-canonical copy drifts.
    let dup = run(&[
        (
            "crates/core/src/a.rs",
            "pub fn from_json(s: &str) -> bool { s.contains(\"fcn-dup/1\") }\n",
        ),
        (
            "crates/core/src/b.rs",
            "pub fn from_json(s: &str) -> bool { s.contains(\"fcn-dup/1\") }\n",
        ),
    ]);
    assert_eq!(
        rule_ids(&dup),
        vec!["SCHEMA-TAG"],
        "findings: {:?}",
        dup.findings
    );
    assert_eq!(dup.findings[0].path, "crates/core/src/b.rs");
    // A tag defined with no from_*/validate/parse fn in its file.
    let lonely = run(&[(
        "crates/core/src/fx.rs",
        "pub const FX_SCHEMA: &str = \"fcn-lonely/1\";\n",
    )]);
    assert_eq!(rule_ids(&lonely), vec!["SCHEMA-TAG"]);
    assert!(lonely.findings[0].message.contains("no matching validator"));
}

#[test]
fn schema_tag_suppressed_with_reason() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn emit(v: &u32) -> String { serde_json::to_string(v).unwrap_or_default() } // fcn-allow: SCHEMA-TAG scratch debug dump, never persisted\n",
    )]);
    assert_suppressed(&a);
}

// ---------------------------------------------------------------- TEL-NAME

#[test]
fn tel_name_fires_for_string_literal_metric_names() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "pub fn f(t: &Telemetry) { t.inc(\"router.batches\", 1); }\n",
    )]);
    assert_single(&a, "TEL-NAME", 1);
}

#[test]
fn tel_name_clean_when_names_come_from_the_const_table() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "pub fn f(t: &Telemetry) { t.inc(names::ROUTER_BATCHES, 1); }\n",
    )]);
    assert_clean(&a);
}

#[test]
fn tel_name_workspace_half_flags_duplicate_table_values() {
    // The second file keeps both consts live so TEL-DEAD stays quiet and
    // only the duplicate-value finding surfaces.
    let a = run(&[
        (
            "crates/telemetry/src/names.rs",
            r#"pub const A: &str = "dup.metric";
pub const B: &str = "dup.metric";
"#,
        ),
        (
            "crates/routing/src/fx.rs",
            "pub fn f(t: &Telemetry) { t.inc(names::A, 1); t.inc(names::B, 1); }\n",
        ),
    ]);
    assert_eq!(rule_ids(&a), vec!["TEL-NAME"], "findings: {:?}", a.findings);
    assert_eq!(a.findings[0].line, 2);
    assert!(a.findings[0].message.contains("duplicate metric name"));
}

#[test]
fn tel_name_suppressed_with_reason() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "pub fn f(t: &Telemetry) { t.inc(\"router.batches\", 1); } // fcn-allow: TEL-NAME fixture for the names migration test\n",
    )]);
    assert_suppressed(&a);
}

// -------------------------------------------------------------- ATOMIC-DOC

#[test]
fn atomic_doc_fires_without_a_justification() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }\n",
    )]);
    assert_single(&a, "ATOMIC-DOC", 1);
}

#[test]
fn atomic_doc_comment_covers_its_whole_paragraph_but_not_past_a_blank() {
    // One justification heads a contiguous block of related atomics.
    let a = run(&[(
        "crates/core/src/fx.rs",
        r#"pub fn f(a: &AtomicUsize) {
    // ordering: relaxed — commutative counters, joined before any read
    a.fetch_add(1, Ordering::Relaxed);
    a.fetch_add(2, Ordering::Relaxed);
}
"#,
    )]);
    assert_clean(&a);
    // A fully blank line ends the covered paragraph.
    let b = run(&[(
        "crates/core/src/fx.rs",
        r#"pub fn f(a: &AtomicUsize) {
    // ordering: relaxed — commutative counter
    a.fetch_add(1, Ordering::Relaxed);

    a.fetch_add(2, Ordering::Relaxed);
}
"#,
    )]);
    assert_single(&b, "ATOMIC-DOC", 5);
}

#[test]
fn atomic_doc_suppressed_with_reason() {
    let a = run(&[(
        "crates/core/src/fx.rs",
        "pub fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); } // fcn-allow: ATOMIC-DOC fixture, no real concurrency\n",
    )]);
    assert_suppressed(&a);
}

// ------------------------------------------------------------- SHARD-MERGE

#[test]
fn shard_merge_fires_on_direct_boundary_buffer_access_in_routing() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "pub fn f(outboxes: &[Outbox]) { for o in outboxes { scan(&o.msgs); } }\n",
    )]);
    assert_single(&a, "SHARD-MERGE", 1);
}

#[test]
fn shard_merge_clean_in_boundary_rs_tests_and_other_crates() {
    // boundary.rs owns the canonical merge: direct buffer access is its job.
    let a = run(&[(
        "crates/routing/src/boundary.rs",
        "pub fn f(outboxes: &[Outbox]) { for o in outboxes { scan(&o.msgs); } }\n",
    )]);
    assert_clean(&a);
    // Test code may introspect buffers freely.
    let b = run(&[(
        "crates/routing/tests/fx.rs",
        "fn t(o: &Outbox) { assert!(o.msgs.is_empty()); }\n",
    )]);
    assert_clean(&b);
    // The token is only meaningful inside fcn-routing.
    let c = run(&[(
        "crates/telemetry/src/fx.rs",
        "pub fn f(s: &Shard) { drain(&s.msgs); }\n",
    )]);
    assert_clean(&c);
    // Unrelated identifiers that merely contain the substring do not fire.
    let d = run(&[(
        "crates/routing/src/fx.rs",
        "pub fn f(q: &Queue) -> usize { q.msgs_len + 1 }\n",
    )]);
    assert_clean(&d);
}

#[test]
fn shard_merge_suppressed_with_reason() {
    let a = run(&[(
        "crates/routing/src/fx.rs",
        "pub fn f(o: &Outbox) -> usize { o.msgs.len() } // fcn-allow: SHARD-MERGE read-only length, no iteration\n",
    )]);
    assert_suppressed(&a);
}

// --------------------------------------------------------- SERVE-DEADLINE

#[test]
fn serve_deadline_fires_on_raw_socket_calls_outside_the_io_layer() {
    let a = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn f(s: &mut TcpStream, buf: &mut [u8]) { s.read(buf).ok(); }\n",
    )]);
    assert_single(&a, "SERVE-DEADLINE", 1);
    let b = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn g(s: &mut TcpStream) { s.write_all(b\"x\").ok(); }\n",
    )]);
    assert_single(&b, "SERVE-DEADLINE", 1);
}

#[test]
fn serve_deadline_clean_in_io_rs_framed_wrappers_and_other_crates() {
    // The framed layer itself is the allowlisted home of raw calls.
    let a = run(&[(
        "crates/serve/src/io.rs",
        "pub fn f(s: &mut TcpStream, buf: &mut [u8]) { s.read(buf).ok(); }\n",
    )]);
    assert_clean(&a);
    // FramedConn method names do not trip the raw-call patterns.
    let b = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn f(c: &mut FramedConn) { c.read_frame(None).ok(); c.write_frame(b\"x\").ok(); }\n",
    )]);
    assert_clean(&b);
    // Raw reads outside fcn-serve are some other crate's business.
    let c = run(&[(
        "crates/cli/src/fx.rs",
        "pub fn f(s: &mut TcpStream, buf: &mut [u8]) { s.read(buf).ok(); }\n",
    )]);
    assert_clean(&c);
}

#[test]
fn serve_deadline_suppressed_with_reason() {
    let a = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn f(s: &mut TcpStream) { s.flush().ok(); } // fcn-allow: SERVE-DEADLINE fixture, flush cannot block here\n",
    )]);
    assert_suppressed(&a);
}

// ------------------------------------------------------------- CHAOS-SEED

#[test]
fn chaos_seed_fires_on_actions_handled_outside_the_plan_path() {
    let a = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn f() -> ChaosAction { ChaosAction::Truncate }\n",
    )]);
    assert_single(&a, "CHAOS-SEED", 1);
    // Matching an action is an injection site too, not just constructing.
    let b = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn g(a: &ChaosAction) -> bool { matches!(a, ChaosAction::Truncate) }\n",
    )]);
    assert_eq!(rule_ids(&b), vec!["CHAOS-SEED"]);
}

#[test]
fn chaos_seed_clean_in_the_plan_path_imports_and_other_crates() {
    // chaos.rs decides and io.rs applies: both are the sanctioned path.
    let a = run(&[
        (
            "crates/serve/src/chaos.rs",
            "pub fn f() -> ChaosAction { ChaosAction::Truncate }\n",
        ),
        (
            "crates/serve/src/io.rs",
            "pub fn g(a: ChaosAction) -> bool { a == ChaosAction::Truncate }\n",
        ),
    ]);
    assert_clean(&a);
    // Imports and re-exports don't inject anything.
    let b = run(&[(
        "crates/serve/src/fx.rs",
        "pub use crate::chaos::ChaosAction;\nuse crate::chaos::ChaosAction as Act;\n",
    )]);
    assert_clean(&b);
    // Other crates are outside the rule's jurisdiction.
    let c = run(&[(
        "crates/cli/src/fx.rs",
        "pub fn f() -> ChaosAction { ChaosAction::Truncate }\n",
    )]);
    assert_clean(&c);
}

#[test]
fn chaos_seed_suppressed_with_reason() {
    let a = run(&[(
        "crates/serve/src/fx.rs",
        "pub fn f(a: &ChaosAction) { render(a); } // fcn-allow: CHAOS-SEED fixture, display only\n",
    )]);
    assert_suppressed(&a);
}

// ------------------------------------------------------------ self-hosting

/// The committed workspace must be clean under its own analyzer: zero
/// findings beyond the (committed, empty) baseline. This is the in-tree
/// twin of the CI `analysis` job.
#[test]
fn workspace_self_run_has_zero_non_baseline_findings() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = fcn_analyze::walk::find_workspace_root(here).expect("inside the fcn workspace");
    let baseline_text =
        std::fs::read_to_string(root.join("fcn-analyze.baseline")).unwrap_or_default();
    let baseline = fcn_analyze::report::parse_baseline(&baseline_text);
    let a = fcn_analyze::analyze_workspace(&root, &[], &[], &baseline).expect("workspace readable");
    assert!(
        a.findings.is_empty(),
        "fcn-analyze found new violations:\n{}",
        a.findings
            .iter()
            .map(fcn_analyze::report::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        a.totals.files > 30,
        "walker saw too few files: {:?}",
        a.totals
    );
}
