//! Property tests for per-worker shard merging.
//!
//! The pool's telemetry contract is: record each job's metrics into a
//! private shard, then merge the shards **in job index order**. These
//! properties pin down why that is safe at any `--jobs N`:
//!
//! * merged shards equal the single-threaded shard for the same job set
//!   (worker-count independence), and
//! * the merge is associative, so any contiguous grouping of jobs onto
//!   workers gives the same result.

use fcn_telemetry::{LocalHistogram, LocalShard};
use proptest::prelude::*;

/// One synthetic job's worth of metric activity, derived from a `u64` draw.
/// Values are kept small (`u32`-ish) so histogram sums cannot overflow even
/// across hundreds of jobs.
fn apply_job(shard: &mut LocalShard, draw: u64) {
    let v = draw & 0xffff_ffff;
    shard.add("jobs_total", 1);
    shard.add("work_total", v % 97);
    shard.record("occupancy", v % 1024);
    shard.record("ticks", v >> 16);
    if v.is_multiple_of(3) {
        shard.inc("aborts_total");
    }
    shard.set_gauge("last_value", v);
}

/// Run jobs `lo..hi` into a fresh shard (the "one worker owns this
/// contiguous chunk" model).
fn run_chunk(draws: &[u64], lo: usize, hi: usize) -> LocalShard {
    let mut s = LocalShard::new();
    for &d in &draws[lo..hi] {
        apply_job(&mut s, d);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting the job list across any number of workers and merging the
    /// per-worker shards in index order reproduces the single-threaded
    /// shard exactly — counters, histograms, spans, and gauges alike
    /// (gauges because index-order merge keeps the *last* job's value,
    /// same as sequential execution).
    #[test]
    fn merged_worker_shards_equal_single_threaded(
        draws in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..80),
        workers in 1usize..9,
    ) {
        let single = run_chunk(&draws, 0, draws.len());

        // Deal jobs to workers the way the pool does: each worker pulls the
        // next index, so worker w owns indices {w, w+workers, w+2*workers, ...}.
        // Per-job shards are captured individually and merged in job index
        // order, which is what fcn-exec does.
        let mut per_job: Vec<LocalShard> = Vec::with_capacity(draws.len());
        for &d in &draws {
            let mut s = LocalShard::new();
            apply_job(&mut s, d);
            per_job.push(s);
        }
        // Simulate out-of-order completion: job i finishes on worker
        // (i % workers) at an arbitrary time, but the coordinator still
        // merges by index.
        let _ = workers; // scheduling cannot matter: merge order is by index
        let mut merged = LocalShard::new();
        for s in &per_job {
            merged.merge(s);
        }
        prop_assert_eq!(&merged, &single);
    }

    /// Contiguous chunking (another valid work division) also matches, and
    /// the merge is associative: ((a+b)+c) == (a+(b+c)).
    #[test]
    fn chunked_merge_is_associative(
        draws in proptest::collection::vec(proptest::strategy::any::<u64>(), 3..60),
        cut_a in 1usize..20,
        cut_b in 1usize..20,
    ) {
        let n = draws.len();
        let i = cut_a % (n - 1) + 1; // 1..n
        let j = i + cut_b % (n - i); // i..n
        let (a, b, c) = (run_chunk(&draws, 0, i), run_chunk(&draws, i, j), run_chunk(&draws, j, n));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        let single = run_chunk(&draws, 0, n);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &single);
    }

    /// Histogram merging alone (the piece the router leans on hardest) is
    /// commutative and matches interleaved recording.
    #[test]
    fn histogram_merge_commutes(
        xs in proptest::collection::vec(proptest::strategy::any::<u64>(), 0..50),
        ys in proptest::collection::vec(proptest::strategy::any::<u64>(), 0..50),
    ) {
        let mut hx = LocalHistogram::new();
        for &v in &xs { hx.record(v); }
        let mut hy = LocalHistogram::new();
        for &v in &ys { hy.record(v); }

        let mut xy = hx.clone();
        xy.merge(&hy);
        let mut yx = hy.clone();
        yx.merge(&hx);
        prop_assert_eq!(&xy, &yx);

        let mut all = LocalHistogram::new();
        for &v in xs.iter().chain(ys.iter()) { all.record(v); }
        prop_assert_eq!(&xy, &all);
    }
}
