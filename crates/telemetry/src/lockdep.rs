//! A debug-build lockdep: ordered lock-rank assertions on every ranked
//! mutex acquisition.
//!
//! The workspace holds its ~dozen long-lived mutexes in a **total rank
//! order** (the [`ranks`] table). Every lock wrapper in `fcn-serve`,
//! `fcn-exec`, `fcn-routing`, and this crate acquires through
//! [`lock_ranked`], which in debug builds asserts two invariants on a
//! thread-local held-lock stack:
//!
//! 1. **Monotone acquisition** — a thread may only acquire a lock whose
//!    rank is strictly greater than every rank it already holds. Any
//!    execution that would need ranks out of order is exactly an edge of a
//!    potential deadlock cycle, caught on the *first* run that exercises
//!    it, not the unlucky interleaving that wedges.
//! 2. **Lone-lock condvar waits** — [`wait_timeout_ranked`] asserts the
//!    waited mutex is the *only* lock the thread holds. Sleeping on a
//!    condvar while holding a second lock stalls every thread that needs
//!    the held one for the full wait budget.
//!
//! In release builds the tracking compiles away entirely: [`lock_ranked`]
//! degenerates to the workspace's poison-recovering lock idiom and
//! [`LockToken`] is a zero-sized type.
//!
//! The module lives in `fcn-telemetry` only because that crate is the
//! bottom of the workspace dependency stack (the registry's own three maps
//! are ranked too); `fcn-exec` re-exports it as `fcn_exec::lockdep`, the
//! canonical path service code imports. The static half of the contract is
//! `fcn-analyze`'s LOCK-ORDER rule, which parses the [`ranks`] table and
//! checks every `lock_ranked` nesting it can see at analysis time; this
//! shim enforces the same declared order on the executions the analyzer
//! cannot see (trait objects, cross-crate calls) in every debug test run.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// A position in the workspace lock order: a rank number (acquisition
/// order: low ranks are outermost) and a stable diagnostic name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    rank: u32,
    name: &'static str,
}

impl LockRank {
    /// Declare a rank. Use only in the [`ranks`] table: the static
    /// LOCK-ORDER rule reads that table as the declared order.
    pub const fn new(rank: u32, name: &'static str) -> LockRank {
        LockRank { rank, name }
    }

    /// The numeric rank (low = acquired first).
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The diagnostic name, `crate.lock` convention.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// The workspace lock-rank table: the single declared acquisition order.
///
/// Seeded from the serve hierarchy (admission → registry → merge →
/// replies), then the per-run caches and pool bookkeeping, with the
/// telemetry registry maps innermost — they are leaf locks every layer
/// above may take while holding its own (`MergeQueue::complete` flushes a
/// shard into the registry under the merge lock).
pub mod ranks {
    use super::LockRank;

    /// `fcn-serve` admission queue state (`Admission::state`). Outermost:
    /// held across FIFO condvar waits, never while holding anything else.
    pub const SERVE_ADMISSION: LockRank = LockRank::new(10, "serve.admission");
    /// `fcn-serve` compiled-plan registry map (`Registry::entries`).
    pub const SERVE_REGISTRY: LockRank = LockRank::new(20, "serve.registry");
    /// `fcn-serve` merge-queue state (`MergeQueue::state`).
    pub const SERVE_MERGE: LockRank = LockRank::new(30, "serve.merge");
    /// `fcn-serve` reply cache (`ReplyCache::state`).
    pub const SERVE_REPLIES: LockRank = LockRank::new(40, "serve.replies");
    /// `fcn-routing` compiled-plan cache map (`PlanCache::map`).
    pub const ROUTING_PLAN_CACHE: LockRank = LockRank::new(50, "routing.plan_cache");
    /// `fcn-exec` pool result slots.
    pub const EXEC_SLOTS: LockRank = LockRank::new(60, "exec.pool_slots");
    /// `fcn-exec` pool per-job telemetry shards.
    pub const EXEC_SHARDS: LockRank = LockRank::new(61, "exec.pool_shards");
    /// `fcn-exec` watchdog disarm flag (held across its condvar wait).
    pub const EXEC_WATCHDOG: LockRank = LockRank::new(70, "exec.watchdog");
    /// `fcn-telemetry` registry counter map. Innermost leaves: registry
    /// getters never call out while holding them.
    pub const TEL_COUNTERS: LockRank = LockRank::new(80, "telemetry.counters");
    /// `fcn-telemetry` registry gauge map.
    pub const TEL_GAUGES: LockRank = LockRank::new(81, "telemetry.gauges");
    /// `fcn-telemetry` registry histogram map.
    pub const TEL_HISTOGRAMS: LockRank = LockRank::new(82, "telemetry.histograms");
}

#[cfg(debug_assertions)]
mod held {
    //! The debug-only thread-local held-lock stack.

    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// `(rank, token id)` per held ranked lock, acquisition order.
        static HELD: RefCell<Vec<(LockRank, u64)>> = const { RefCell::new(Vec::new()) };
        /// Monotone token ids so out-of-order guard drops release the
        /// right entry.
        static NEXT_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    pub(super) fn acquire(rank: LockRank) -> u64 {
        let id = NEXT_ID.with(|n| {
            let id = n.get();
            n.set(id + 1);
            id
        });
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            for (held, _) in h.iter() {
                assert!(
                    held.rank() < rank.rank(),
                    "lock-order violation: acquiring `{}` (rank {}) while holding \
                     `{}` (rank {}); the declared order in fcn_telemetry::lockdep::ranks \
                     requires strictly increasing ranks",
                    rank.name(),
                    rank.rank(),
                    held.name(),
                    held.rank(),
                );
            }
            h.push((rank, id));
        });
        id
    }

    pub(super) fn release(id: u64) {
        HELD.with(|h| h.borrow_mut().retain(|(_, held_id)| *held_id != id));
    }

    pub(super) fn assert_sole(rank: LockRank) {
        HELD.with(|h| {
            let h = h.borrow();
            assert!(
                h.len() <= 1,
                "condvar wait on `{}` while holding {} other ranked lock(s) \
                 (first extra: `{}`): a wait must hold only the waited mutex",
                rank.name(),
                h.len().saturating_sub(1),
                h.iter()
                    .map(|(r, _)| r.name())
                    .find(|n| *n != rank.name())
                    .unwrap_or("?"),
            );
        });
    }
}

/// The debug-build bookkeeping half of a [`RankedGuard`]; a zero-sized
/// no-op in release builds.
#[derive(Debug)]
pub struct LockToken {
    #[cfg(debug_assertions)]
    id: u64,
}

impl LockToken {
    fn acquire(rank: LockRank) -> LockToken {
        #[cfg(debug_assertions)]
        {
            LockToken {
                id: held::acquire(rank),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = rank;
            LockToken {}
        }
    }
}

impl Drop for LockToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::release(self.id);
    }
}

/// A [`MutexGuard`] paired with its rank bookkeeping. Dereferences
/// transparently; dropping it releases both the mutex and the rank.
#[derive(Debug)]
pub struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    rank: LockRank,
    token: LockToken,
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Acquire `m` at `rank`, asserting the declared lock order in debug
/// builds and recovering from poison (the workspace convention: a
/// panicking holder must not cascade into every later taker — per-slot /
/// per-entry data under these locks stays well-formed).
pub fn lock_ranked<'a, T>(m: &'a Mutex<T>, rank: LockRank) -> RankedGuard<'a, T> {
    // Order matters: assert + record *before* blocking on the mutex, so a
    // genuine deadlock still reports the violation on the thread that
    // closed the cycle.
    let token = LockToken::acquire(rank);
    let guard = m.lock().unwrap_or_else(|poison| poison.into_inner());
    RankedGuard { guard, rank, token }
}

/// Condvar wait under a ranked guard: asserts (debug builds) that the
/// waited mutex is the only ranked lock this thread holds, then waits with
/// poison recovery. The rank stays held across the wait — the thread still
/// owns the slot in the lock order when it wakes.
pub fn wait_timeout_ranked<'a, T>(
    cv: &Condvar,
    g: RankedGuard<'a, T>,
    dur: Duration,
) -> (RankedGuard<'a, T>, WaitTimeoutResult) {
    #[cfg(debug_assertions)]
    held::assert_sole(g.rank);
    let RankedGuard { guard, rank, token } = g;
    let (guard, res) = cv
        .wait_timeout(guard, dur)
        .unwrap_or_else(|poison| poison.into_inner());
    (RankedGuard { guard, rank, token }, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn in_order_nesting_is_allowed() {
        let outer = Mutex::new(1u32);
        let inner = Mutex::new(2u32);
        let g1 = lock_ranked(&outer, ranks::SERVE_ADMISSION);
        let g2 = lock_ranked(&inner, ranks::TEL_COUNTERS);
        assert_eq!(*g1 + *g2, 3);
    }

    #[test]
    fn reacquire_after_release_is_allowed() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        drop(lock_ranked(&b, ranks::SERVE_MERGE));
        // b released: taking a lower rank afterwards is fine.
        drop(lock_ranked(&a, ranks::SERVE_ADMISSION));
        drop(lock_ranked(&b, ranks::SERVE_MERGE));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep asserts only in debug builds")]
    fn out_of_order_nesting_panics() {
        let merge = Mutex::new(1u32);
        let adm = Mutex::new(2u32);
        let result = std::panic::catch_unwind(|| {
            let _g1 = lock_ranked(&merge, ranks::SERVE_MERGE);
            let _g2 = lock_ranked(&adm, ranks::SERVE_ADMISSION);
        });
        let err = result.expect_err("inverted pair must assert");
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("lock-order violation"), "{text}");
        assert!(text.contains("serve.admission"), "{text}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep asserts only in debug builds")]
    fn equal_rank_nesting_panics() {
        let a = Mutex::new(1u32);
        let b = Mutex::new(2u32);
        let result = std::panic::catch_unwind(|| {
            let _g1 = lock_ranked(&a, ranks::TEL_COUNTERS);
            let _g2 = lock_ranked(&b, ranks::TEL_COUNTERS);
        });
        assert!(result.is_err(), "same-rank nesting must assert");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep asserts only in debug builds")]
    fn condvar_wait_with_second_lock_panics() {
        let outer = Mutex::new(false);
        let inner = Mutex::new(false);
        let cv = Condvar::new();
        let result = std::panic::catch_unwind(|| {
            let _g1 = lock_ranked(&outer, ranks::SERVE_ADMISSION);
            let g2 = lock_ranked(&inner, ranks::EXEC_WATCHDOG);
            let _ = wait_timeout_ranked(&cv, g2, Duration::from_millis(1));
        });
        let err = result.expect_err("wait while holding a second lock must assert");
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("condvar wait"), "{text}");
    }

    #[test]
    fn lone_condvar_wait_is_allowed_and_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let g = lock_ranked(&m, ranks::EXEC_WATCHDOG);
        let (g, res) = wait_timeout_ranked(&cv, g, Duration::from_millis(1));
        assert!(res.timed_out());
        assert!(!*g);
    }

    #[test]
    fn out_of_order_drops_release_the_right_entry() {
        let a = Mutex::new(1u32);
        let b = Mutex::new(2u32);
        let g1 = lock_ranked(&a, ranks::SERVE_ADMISSION);
        let g2 = lock_ranked(&b, ranks::SERVE_REGISTRY);
        drop(g1); // outer released first: inner entry must survive intact
        drop(g2);
        // Stack is empty again: an unrelated low-rank acquire succeeds.
        drop(lock_ranked(&a, ranks::SERVE_ADMISSION));
    }

    #[test]
    fn ranks_table_is_strictly_ordered_and_named() {
        let table = [
            ranks::SERVE_ADMISSION,
            ranks::SERVE_REGISTRY,
            ranks::SERVE_MERGE,
            ranks::SERVE_REPLIES,
            ranks::ROUTING_PLAN_CACHE,
            ranks::EXEC_SLOTS,
            ranks::EXEC_SHARDS,
            ranks::EXEC_WATCHDOG,
            ranks::TEL_COUNTERS,
            ranks::TEL_GAUGES,
            ranks::TEL_HISTOGRAMS,
        ];
        for pair in table.windows(2) {
            assert!(
                pair[0].rank() < pair[1].rank(),
                "{} vs {}",
                pair[0].name(),
                pair[1].name()
            );
        }
        for r in &table {
            assert!(
                r.name().contains('.'),
                "{} follows crate.lock naming",
                r.name()
            );
        }
    }
}
