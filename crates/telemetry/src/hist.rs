//! Fixed-bucket histograms.
//!
//! Every histogram in the workspace shares one static bucket layout —
//! power-of-two edges — so histograms can be merged bucket-by-bucket with
//! plain `u64` additions, which is what makes per-worker shard merging both
//! cheap and **order-independent** (integer addition commutes; there is no
//! floating-point accumulation anywhere in the metric pipeline).
//!
//! Layout: bucket `0` holds the value `0`; bucket `i` (for `1 <= i <= 32`)
//! holds values in `[2^(i-1), 2^i)`; the last bucket holds everything
//! `>= 2^32`. The inclusive upper bound of bucket `i < 33` is therefore
//! `2^i - 1`, and the last bucket renders as `+Inf` in the Prometheus
//! exposition.

/// Number of buckets in every histogram.
pub const HIST_BUCKETS: usize = 34;

/// Bucket index of a recorded value (see the module docs for the layout).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, or `None` for the overflow bucket
/// (rendered as `+Inf`).
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HIST_BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// A plain (non-atomic) histogram: the unit of per-worker sharding and the
/// value type of snapshots.
///
/// `count` is always the sum of `buckets`, and `sum` is the exact sum of
/// recorded values (so mean occupancy etc. can be recovered from a
/// snapshot without the raw series).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHistogram {
    /// Per-bucket observation counts (layout in the module docs).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Record the same observation `n` times in O(1) — one bucket add
    /// instead of `n` calls to [`record`](Self::record). The event-driven
    /// router uses this to account for skipped idle spans, where a constant
    /// occupancy held for the whole span; the resulting histogram is
    /// bit-identical to `n` individual records.
    #[inline]
    pub fn record_many(&mut self, v: u64, n: u64) {
        self.buckets[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
    }

    /// Merge another histogram into this one (bucket-wise addition — the
    /// associative, commutative shard-merge operation).
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise `self - baseline` (saturating), for delta snapshots.
    pub fn saturating_sub(&self, baseline: &LocalHistogram) -> LocalHistogram {
        let mut out = LocalHistogram::new();
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(baseline.buckets[i]);
        }
        out.count = self.count.saturating_sub(baseline.count);
        out.sum = self.sum.wrapping_sub(baseline.sum);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index((1 << 32) - 1), 32);
        assert_eq!(bucket_index(1 << 32), 33);
        assert_eq!(bucket_index(u64::MAX), 33);
    }

    #[test]
    fn upper_bounds_match_indexing() {
        for i in 0..HIST_BUCKETS {
            match bucket_upper_bound(i) {
                Some(ub) => {
                    assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
                    assert_eq!(bucket_index(ub + 1), i + 1);
                }
                None => assert_eq!(i, HIST_BUCKETS - 1),
            }
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        let mut all = LocalHistogram::new();
        for v in [0u64, 1, 5, 9, 1000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 5, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        assert_eq!(merged.count, 8);
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let mut bulk = LocalHistogram::new();
        let mut loop_ = LocalHistogram::new();
        for (v, n) in [(0u64, 3u64), (5, 1), (9, 1000), (1 << 40, 2)] {
            bulk.record_many(v, n);
            for _ in 0..n {
                loop_.record(v);
            }
        }
        bulk.record_many(7, 0); // n = 0 is a no-op
        assert_eq!(bulk, loop_);
    }

    #[test]
    fn saturating_sub_is_a_delta() {
        let mut base = LocalHistogram::new();
        base.record(3);
        let mut now = base.clone();
        now.record(100);
        let d = now.saturating_sub(&base);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 100);
        assert_eq!(d.buckets[bucket_index(100)], 1);
    }
}
