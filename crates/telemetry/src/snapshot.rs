//! Versioned snapshots: JSONL persistence and Prometheus text exposition.
//!
//! A [`MetricsSnapshot`] is a point-in-time copy of a registry. Snapshots
//! subtract ([`MetricsSnapshot::delta_since`]) so a long-lived process (or a
//! test binary running many in-process CLI invocations against the global
//! registry) can report exactly what one run contributed.
//!
//! The JSONL format is one self-describing object per line:
//!
//! ```text
//! {"schema":"fcn-telemetry/1","kind":"header","counters":2,"gauges":1,"histograms":1}
//! {"kind":"counter","name":"router_ticks_total","value":1024}
//! {"kind":"gauge","name":"exec_workers_last","value":4}
//! {"kind":"histogram","name":"router_queue_occupancy","count":9,"sum":41,"buckets":[...34 entries...]}
//! ```

use std::collections::BTreeMap;

use serde::Value;

use crate::hist::{bucket_upper_bound, LocalHistogram, HIST_BUCKETS};

/// Schema tag stamped on (and required from) every JSONL snapshot.
pub const SNAPSHOT_SCHEMA: &str = "fcn-telemetry/1";

/// A point-in-time copy of every instrument in a registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, LocalHistogram>,
}

/// Render one JSONL line from a hand-built [`Value`] tree.
fn render_line(v: &Value) -> String {
    // fcn-allow: ERR-UNWRAP hand-built `serde_json::Value` trees (string keys, integer leaves) always serialize
    serde_json::to_string(v).expect("value renders")
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, String> {
    serde::value_field(v, name).map_err(|e| e.to_string())
}

fn field_u64(v: &Value, name: &str) -> Result<u64, String> {
    match field(v, name)? {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!("field {name:?}: expected u64, found {other:?}")),
    }
}

fn field_str<'v>(v: &'v Value, name: &str) -> Result<&'v str, String> {
    match field(v, name)? {
        Value::String(s) => Ok(s),
        other => Err(format!("field {name:?}: expected string, found {other:?}")),
    }
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no instrument carries any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// What this snapshot adds over `baseline`: counters and histograms
    /// subtract (saturating), gauges keep their current value. Instruments
    /// whose delta is zero/empty are dropped, so a run that never touched a
    /// metric does not report it.
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (k, v) in &self.counters {
            let d = v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0));
            if d != 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, v) in &self.gauges {
            out.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &self.histograms {
            let d = match baseline.histograms.get(k) {
                Some(b) => h.saturating_sub(b),
                None => h.clone(),
            };
            if !d.is_empty() {
                out.histograms.insert(k.clone(), d);
            }
        }
        out
    }

    /// A copy with all wall-clock metrics removed (span timings and
    /// busy/idle nano counters). What remains is deterministic: identical
    /// across runs, worker counts, and machines for the same workload.
    pub fn without_wall_clock(&self) -> MetricsSnapshot {
        let mut out = self.clone();
        out.counters.retain(|k, _| !k.ends_with("_nanos_total"));
        out.counters
            .retain(|k, _| !(k.starts_with("span_") && k.ends_with("_calls_total")));
        out
    }

    /// Render as versioned JSONL (format in the module docs). Lines are
    /// sorted by kind then name, so equal snapshots render byte-identically.
    pub fn to_jsonl(&self) -> String {
        let mut lines =
            Vec::with_capacity(1 + self.counters.len() + self.gauges.len() + self.histograms.len());
        let header = obj(vec![
            ("schema", Value::String(SNAPSHOT_SCHEMA.to_string())),
            ("kind", Value::String("header".to_string())),
            ("counters", Value::UInt(self.counters.len() as u64)),
            ("gauges", Value::UInt(self.gauges.len() as u64)),
            ("histograms", Value::UInt(self.histograms.len() as u64)),
        ]);
        lines.push(render_line(&header));
        for (k, v) in &self.counters {
            let line = obj(vec![
                ("kind", Value::String("counter".to_string())),
                ("name", Value::String(k.clone())),
                ("value", Value::UInt(*v)),
            ]);
            lines.push(render_line(&line));
        }
        for (k, v) in &self.gauges {
            let line = obj(vec![
                ("kind", Value::String("gauge".to_string())),
                ("name", Value::String(k.clone())),
                ("value", Value::UInt(*v)),
            ]);
            lines.push(render_line(&line));
        }
        for (k, h) in &self.histograms {
            let buckets = Value::Array(h.buckets.iter().map(|&b| Value::UInt(b)).collect());
            let line = obj(vec![
                ("kind", Value::String("histogram".to_string())),
                ("name", Value::String(k.clone())),
                ("count", Value::UInt(h.count)),
                ("sum", Value::UInt(h.sum)),
                ("buckets", buckets),
            ]);
            lines.push(render_line(&line));
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Parse and validate a JSONL snapshot. Errors describe the offending
    /// line: wrong schema, unknown kind, malformed histogram (bucket count
    /// != [`HIST_BUCKETS`] or `count` != Σ buckets), or a count mismatch
    /// against the header.
    pub fn from_jsonl(text: &str) -> Result<MetricsSnapshot, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty snapshot: no header line")?;
        let header: Value = serde_json::from_str(header_line)
            .map_err(|e| format!("header line is not JSON: {e}"))?;
        let schema = field_str(&header, "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "snapshot schema {schema:?} != expected {SNAPSHOT_SCHEMA:?}"
            ));
        }
        if field_str(&header, "kind")? != "header" {
            return Err("first line must have kind \"header\"".to_string());
        }
        let want_counters = field_u64(&header, "counters")?;
        let want_gauges = field_u64(&header, "gauges")?;
        let want_hists = field_u64(&header, "histograms")?;

        let mut snap = MetricsSnapshot::new();
        for (i, line) in lines.enumerate() {
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("line {}: not JSON: {e}", i + 2))?;
            let kind = field_str(&v, "kind").map_err(|e| format!("line {}: {e}", i + 2))?;
            let name = field_str(&v, "name")
                .map_err(|e| format!("line {}: {e}", i + 2))?
                .to_string();
            match kind {
                "counter" => {
                    let value =
                        field_u64(&v, "value").map_err(|e| format!("line {}: {e}", i + 2))?;
                    snap.counters.insert(name, value);
                }
                "gauge" => {
                    let value =
                        field_u64(&v, "value").map_err(|e| format!("line {}: {e}", i + 2))?;
                    snap.gauges.insert(name, value);
                }
                "histogram" => {
                    let count =
                        field_u64(&v, "count").map_err(|e| format!("line {}: {e}", i + 2))?;
                    let sum = field_u64(&v, "sum").map_err(|e| format!("line {}: {e}", i + 2))?;
                    let buckets_v =
                        field(&v, "buckets").map_err(|e| format!("line {}: {e}", i + 2))?;
                    let items = match buckets_v {
                        Value::Array(items) => items,
                        other => {
                            return Err(format!(
                                "line {}: histogram buckets must be an array, found {other:?}",
                                i + 2
                            ))
                        }
                    };
                    if items.len() != HIST_BUCKETS {
                        return Err(format!(
                            "line {}: histogram {name:?} has {} buckets, expected {HIST_BUCKETS}",
                            i + 2,
                            items.len()
                        ));
                    }
                    let mut h = LocalHistogram::new();
                    for (j, item) in items.iter().enumerate() {
                        h.buckets[j] = match item {
                            Value::UInt(u) => *u,
                            Value::Int(n) if *n >= 0 => *n as u64,
                            other => {
                                return Err(format!(
                                    "line {}: bucket {j} of {name:?} is not a u64: {other:?}",
                                    i + 2
                                ))
                            }
                        };
                    }
                    let bucket_total: u64 = h.buckets.iter().sum();
                    if bucket_total != count {
                        return Err(format!(
                            "line {}: histogram {name:?} count {count} != bucket total {bucket_total}",
                            i + 2
                        ));
                    }
                    h.count = count;
                    h.sum = sum;
                    snap.histograms.insert(name, h);
                }
                other => return Err(format!("line {}: unknown kind {other:?}", i + 2)),
            }
        }
        if snap.counters.len() as u64 != want_counters
            || snap.gauges.len() as u64 != want_gauges
            || snap.histograms.len() as u64 != want_hists
        {
            return Err(format!(
                "header promised {want_counters} counters / {want_gauges} gauges / {want_hists} histograms, found {} / {} / {}",
                snap.counters.len(),
                snap.gauges.len(),
                snap.histograms.len()
            ));
        }
        Ok(snap)
    }

    /// Render in the Prometheus text exposition format (`# TYPE` comments,
    /// cumulative `_bucket{le="..."}` series, `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("# TYPE {k} counter\n{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("# TYPE {k} gauge\n{k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("# TYPE {k} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cumulative += b;
                match bucket_upper_bound(i) {
                    Some(ub) => {
                        out.push_str(&format!("{k}_bucket{{le=\"{ub}\"}} {cumulative}\n"));
                    }
                    None => {
                        out.push_str(&format!("{k}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    }
                }
            }
            out.push_str(&format!("{k}_sum {}\n{k}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(3);
        reg.counter("b_total").add(1);
        reg.gauge("workers").set(4);
        let h = reg.histogram("occ");
        h.record(0);
        h.record(5);
        h.record(5);
        reg.snapshot()
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let snap = sample();
        let text = snap.to_jsonl();
        let back = MetricsSnapshot::from_jsonl(&text).expect("parses");
        assert_eq!(back, snap);
        // Render is deterministic.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn from_jsonl_rejects_bad_input() {
        assert!(MetricsSnapshot::from_jsonl("").is_err());
        assert!(MetricsSnapshot::from_jsonl("{\"kind\":\"header\"}").is_err());
        let wrong_schema =
            "{\"schema\":\"fcn-telemetry/9\",\"kind\":\"header\",\"counters\":0,\"gauges\":0,\"histograms\":0}\n";
        let err = MetricsSnapshot::from_jsonl(wrong_schema).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let bad_count = format!(
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"kind\":\"header\",\"counters\":2,\"gauges\":0,\"histograms\":0}}\n{{\"kind\":\"counter\",\"name\":\"x_total\",\"value\":1}}\n"
        );
        let err = MetricsSnapshot::from_jsonl(&bad_count).unwrap_err();
        assert!(err.contains("promised"), "{err}");
        // Histogram with mismatched count.
        let mut buckets = vec!["0"; HIST_BUCKETS];
        buckets[1] = "2";
        let bad_hist = format!(
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"kind\":\"header\",\"counters\":0,\"gauges\":0,\"histograms\":1}}\n{{\"kind\":\"histogram\",\"name\":\"h\",\"count\":3,\"sum\":2,\"buckets\":[{}]}}\n",
            buckets.join(",")
        );
        let err = MetricsSnapshot::from_jsonl(&bad_hist).unwrap_err();
        assert!(err.contains("bucket total"), "{err}");
    }

    #[test]
    fn delta_since_subtracts_and_drops_zeroes() {
        let reg = MetricsRegistry::new();
        reg.counter("steady_total").add(5);
        reg.counter("idle_total").add(2);
        reg.histogram("h").record(1);
        let base = reg.snapshot();
        reg.counter("steady_total").add(7);
        reg.gauge("g").set(9);
        reg.histogram("h").record(8);
        let now = reg.snapshot();
        let d = now.delta_since(&base);
        assert_eq!(d.counters.get("steady_total"), Some(&7));
        assert!(!d.counters.contains_key("idle_total"), "zero delta dropped");
        assert_eq!(d.gauges["g"], 9);
        assert_eq!(d.histograms["h"].count, 1);
        assert_eq!(d.histograms["h"].sum, 8);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let snap = sample();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 3\n"));
        assert!(text.contains("# TYPE workers gauge\nworkers 4\n"));
        assert!(text.contains("# TYPE occ histogram\n"));
        // 0 falls in bucket 0 (le="0"), the two 5s in bucket 3 (le="7").
        assert!(text.contains("occ_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("occ_bucket{le=\"7\"} 3\n"), "{text}");
        assert!(text.contains("occ_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.ends_with("occ_sum 10\nocc_count 3\n"));
    }

    #[test]
    fn without_wall_clock_strips_span_and_nano_metrics() {
        let mut snap = sample();
        snap.counters.insert("span_run_calls_total".into(), 2);
        snap.counters.insert("span_run_nanos_total".into(), 999);
        snap.counters
            .insert("exec_worker_busy_nanos_total".into(), 123);
        let clean = snap.without_wall_clock();
        assert!(clean.counters.contains_key("a_total"));
        assert!(!clean.counters.contains_key("span_run_calls_total"));
        assert!(!clean.counters.contains_key("span_run_nanos_total"));
        assert!(!clean.counters.contains_key("exec_worker_busy_nanos_total"));
    }
}
