//! Instrument handles and the [`MetricsRegistry`].
//!
//! Instruments are `Arc`-backed atomics, so a handle can be cloned into any
//! thread (or owned per-instance, like [`fcn-routing`]'s `PlanCache`
//! counters) while the registry keeps a named view for snapshots. All
//! operations are `Relaxed` atomics: metrics observe the simulation, they
//! never synchronize it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{bucket_index, LocalHistogram, HIST_BUCKETS};
use crate::lockdep::{lock_ranked, ranks};
use crate::snapshot::MetricsSnapshot;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        // ordering: counters are commutative u64 additions with no
        // cross-metric invariants; Relaxed is sufficient and cheapest.
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: snapshot reads tolerate torn cross-metric views; each
        // individual u64 load is atomic regardless.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `u64` gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        // ordering: last-write-wins gauge; no other memory is published
        // through this store, so Relaxed cannot be observed inconsistently.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn raise_to(&self, v: u64) {
        // ordering: fetch_max is idempotent and order-insensitive; Relaxed
        // races only reorder equivalent maxima.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: observational read; staleness is acceptable by design.
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// An atomic fixed-bucket histogram (layout in [`crate::hist`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        // ordering: bucket/count/sum are independent commutative additions;
        // readers tolerate mid-record skew (count may trail buckets by one),
        // so no release/acquire pairing is needed.
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merge a whole [`LocalHistogram`] (a worker shard) in one pass.
    pub fn merge_local(&self, local: &LocalHistogram) {
        // ordering: same argument as `record` — all additions commute and
        // no reader requires a consistent cross-field cut.
        for (slot, &n) in self.0.buckets.iter().zip(local.buckets.iter()) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(local.count, Ordering::Relaxed);
        self.0.sum.fetch_add(local.sum, Ordering::Relaxed);
    }

    /// A plain copy of the current contents.
    pub fn load(&self) -> LocalHistogram {
        let mut out = LocalHistogram::new();
        // ordering: observational copy; snapshots are taken after the pool
        // has flushed shards, when no writer races remain.
        for (o, b) in out.buckets.iter_mut().zip(self.0.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out.count = self.0.count.load(Ordering::Relaxed);
        out.sum = self.0.sum.load(Ordering::Relaxed);
        out
    }
}

/// A named collection of instruments with an enable switch.
///
/// The registry starts **disabled**: hot paths check
/// [`MetricsRegistry::enabled`] once per run and skip all collection work
/// when it is off, which is what keeps the disabled path within the <1%
/// overhead budget (`telemetry_overhead` row of `BENCH_router.json`).
/// Instrument creation is get-or-create by name, so any number of call
/// sites can share one counter.
///
/// ```
/// use fcn_telemetry::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// assert!(!reg.enabled());
/// reg.counter("demo_total").add(3);
/// reg.histogram("demo_hist").record(7);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["demo_total"], 3);
/// assert_eq!(snap.histograms["demo_hist"].count, 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Metric names are Prometheus-compatible identifiers.
fn assert_name(name: &str) {
    debug_assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric name {name:?} must be lowercase [a-z0-9_]"
    );
}

impl MetricsRegistry {
    /// A fresh, disabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether expensive collection paths should run.
    #[inline]
    pub fn enabled(&self) -> bool {
        // ordering: the switch is a monotone hint read once per run; a
        // stale read only delays collection by one run and never changes
        // simulated output (telemetry_determinism pins this).
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip the collection switch. Enabling or disabling never changes a
    /// simulated bit — pinned by `crates/routing/tests/telemetry_determinism.rs`.
    pub fn set_enabled(&self, on: bool) {
        // ordering: flipped only at run boundaries on the coordinator
        // thread, before workers spawn / after they join — the thread
        // creation edge already publishes the value.
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        assert_name(name);
        lock_ranked(&self.counters, ranks::TEL_COUNTERS)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        assert_name(name);
        lock_ranked(&self.gauges, ranks::TEL_GAUGES)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        assert_name(name);
        lock_ranked(&self.histograms, ranks::TEL_HISTOGRAMS)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock_ranked(&self.counters, ranks::TEL_COUNTERS)
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let gauges = lock_ranked(&self.gauges, ranks::TEL_GAUGES)
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        let histograms = lock_ranked(&self.histograms, ranks::TEL_HISTOGRAMS)
            .iter()
            .map(|(k, h)| (k.clone(), h.load()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry that instrumented library code reports to.
///
/// It starts disabled; `fcnemu --metrics-out` and the bench bins'
/// `--metrics-out` flag enable it for the duration of a run and write a
/// delta snapshot on exit.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("shared_total");
        let b = reg.counter("shared_total");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("shared_total").get(), 3);
    }

    #[test]
    fn gauges_set_and_raise() {
        let g = Gauge::new();
        g.set(5);
        g.raise_to(3);
        assert_eq!(g.get(), 5);
        g.raise_to(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_atomic_matches_local() {
        let h = Histogram::new();
        let mut l = LocalHistogram::new();
        for v in [0u64, 1, 3, 900, 1 << 35] {
            h.record(v);
            l.record(v);
        }
        assert_eq!(h.load(), l);
        // merge_local doubles everything.
        h.merge_local(&l);
        let doubled = h.load();
        assert_eq!(doubled.count, 2 * l.count);
        assert_eq!(doubled.sum, 2 * l.sum);
    }

    #[test]
    fn registry_starts_disabled_and_toggles() {
        let reg = MetricsRegistry::new();
        assert!(!reg.enabled());
        reg.set_enabled(true);
        assert!(reg.enabled());
        reg.set_enabled(false);
        assert!(!reg.enabled());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").add(4);
        reg.gauge("g").set(7);
        reg.histogram("h").record(2);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(names, ["a_total", "b_total"]);
        assert_eq!(snap.gauges["g"], 7);
        assert_eq!(snap.histograms["h"].count, 1);
    }
}
