//! Thread-local metric shards.
//!
//! Workers never touch the shared [`MetricsRegistry`](crate::MetricsRegistry)
//! from the hot path. Instead, each thread accumulates into a plain
//! [`LocalShard`] (no atomics, no locks) and the *coordinator* — normally
//! `fcn-exec`'s pool — collects the shards and merges them **in job-index
//! order** before flushing once into the registry. Because every shard
//! operation is a `u64` addition (and histogram merging is bucket-wise `u64`
//! addition), the merged totals are independent of worker count and
//! scheduling: telemetry can be enabled on any `--jobs N` without perturbing
//! either the metrics or the simulation.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::hist::LocalHistogram;
use crate::registry::MetricsRegistry;

/// Aggregate for one span name: call count plus total elapsed nanos.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub nanos: u64,
}

/// A plain, single-threaded bundle of metrics.
///
/// Keys are `&'static str` because every metric name in the workspace is a
/// compile-time constant; this keeps the hot path free of allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalShard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, LocalHistogram>,
    spans: BTreeMap<&'static str, SpanStat>,
}

impl LocalShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Add one to counter `name`.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Set gauge `name` (last write wins; in a merge, `other` wins).
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, v: u64) {
        self.gauges.insert(name, v);
    }

    /// Record one observation into histogram `name`.
    #[inline]
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Merge a pre-built histogram into histogram `name` (used by the
    /// router, which accumulates its per-run occupancy histogram locally
    /// and hands it over in one call).
    pub fn record_histogram(&mut self, name: &'static str, h: &LocalHistogram) {
        if !h.is_empty() {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Record one completed span.
    #[inline]
    pub fn record_span(&mut self, name: &'static str, nanos: u64) {
        let s = self.spans.entry(name).or_default();
        s.calls += 1;
        s.nanos += nanos;
    }

    /// Merge `other` into `self`: counters, histograms, and spans add;
    /// gauges take `other`'s value (last-write-wins, matching the
    /// index-order merge convention where later jobs are "newer").
    pub fn merge(&mut self, other: &LocalShard) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
        for (k, s) in &other.spans {
            let e = self.spans.entry(k).or_default();
            e.calls += s.calls;
            e.nanos += s.nanos;
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Counter value (0 if absent) — test/inspection helper.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (None if never set) — test/inspection helper.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram contents (empty if absent) — test/inspection helper.
    pub fn histogram(&self, name: &str) -> LocalHistogram {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Span aggregate (zeroes if absent) — test/inspection helper.
    pub fn span(&self, name: &str) -> SpanStat {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Flush everything into `reg`. Spans materialize as two counters,
    /// `span_{name}_calls_total` and `span_{name}_nanos_total`.
    pub fn flush_into(&self, reg: &MetricsRegistry) {
        for (k, v) in &self.counters {
            if *v != 0 {
                reg.counter(k).add(*v);
            }
        }
        for (k, v) in &self.gauges {
            reg.gauge(k).set(*v);
        }
        for (k, h) in &self.histograms {
            reg.histogram(k).merge_local(h);
        }
        for (k, s) in &self.spans {
            reg.counter(&format!("span_{k}_calls_total")).add(s.calls);
            reg.counter(&format!("span_{k}_nanos_total")).add(s.nanos);
        }
    }
}

thread_local! {
    static SHARD: RefCell<LocalShard> = RefCell::new(LocalShard::new());
}

/// Run `f` with mutable access to this thread's shard.
///
/// Callers are expected to have checked
/// [`global().enabled()`](crate::global) first; the shard itself is always
/// available.
#[inline]
pub fn with_shard<R>(f: impl FnOnce(&mut LocalShard) -> R) -> R {
    SHARD.with(|s| f(&mut s.borrow_mut()))
}

/// Take this thread's shard, leaving an empty one behind.
///
/// `fcn-exec` calls this after each job closure returns to capture the
/// job's metric delta, and again around sequential fallbacks to keep the
/// caller's own shard untouched.
pub fn take_shard() -> LocalShard {
    SHARD.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Replace this thread's shard wholesale (counterpart of [`take_shard`]).
pub fn put_shard(shard: LocalShard) {
    SHARD.with(|s| *s.borrow_mut() = shard);
}

/// Drain this thread's shard into `reg` (no-op on an empty shard).
pub fn flush_thread_shard(reg: &MetricsRegistry) {
    let shard = take_shard();
    if !shard.is_empty() {
        shard.flush_into(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_hists_spans_and_overwrites_gauges() {
        let mut a = LocalShard::new();
        a.add("c_total", 2);
        a.set_gauge("g", 1);
        a.record("h", 4);
        a.record_span("work", 10);

        let mut b = LocalShard::new();
        b.add("c_total", 3);
        b.set_gauge("g", 9);
        b.record("h", 5);
        b.record_span("work", 30);

        a.merge(&b);
        assert_eq!(a.counter("c_total"), 5);
        assert_eq!(a.gauge("g"), Some(9));
        assert_eq!(a.histogram("h").count, 2);
        assert_eq!(
            a.span("work"),
            SpanStat {
                calls: 2,
                nanos: 40
            }
        );
    }

    #[test]
    fn merge_is_order_sensitive_only_for_gauges() {
        let mut a = LocalShard::new();
        a.add("x_total", 1);
        a.record("h", 7);
        let mut b = LocalShard::new();
        b.add("x_total", 4);
        b.record("h", 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "no gauges => merge commutes");
    }

    #[test]
    fn take_and_put_round_trip() {
        with_shard(|s| s.add("tp_total", 7));
        let shard = take_shard();
        assert_eq!(shard.counter("tp_total"), 7);
        with_shard(|s| assert!(s.is_empty()));
        put_shard(shard);
        with_shard(|s| assert_eq!(s.counter("tp_total"), 7));
        // clean up for other tests on this thread
        let _ = take_shard();
    }

    #[test]
    fn flush_into_registry_including_spans() {
        let reg = MetricsRegistry::new();
        let mut s = LocalShard::new();
        s.add("f_total", 2);
        s.set_gauge("f_gauge", 5);
        s.record("f_hist", 3);
        s.record_span("step", 120);
        s.flush_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["f_total"], 2);
        assert_eq!(snap.gauges["f_gauge"], 5);
        assert_eq!(snap.histograms["f_hist"].count, 1);
        assert_eq!(snap.counters["span_step_calls_total"], 1);
        assert_eq!(snap.counters["span_step_nanos_total"], 120);
    }
}
