//! The single const table of telemetry metric and span names.
//!
//! Every instrumented crate refers to these consts instead of inline string
//! literals, so a metric name cannot drift between its emitter, its tests,
//! and the rendered snapshot. `fcn-analyze`'s `TEL-NAME` rule enforces this
//! at the token level: a string literal fed directly to a shard/registry
//! call is a finding, and duplicate values *in this table* are findings too
//! (two consts silently aliasing one name is how drift starts).
//!
//! Naming conventions (Prometheus-compatible, checked by the table test):
//! counters end in `_total`, histograms and spans are bare nouns, gauges
//! describe a last-observed state.

// --- exec pool ----------------------------------------------------------

/// Pool invocations (sequential or parallel).
pub const EXEC_RUNS_TOTAL: &str = "exec_runs_total";
/// Jobs executed across all pool runs.
pub const EXEC_JOBS_TOTAL: &str = "exec_jobs_total";
/// Worker count of the most recent pool run (gauge).
pub const EXEC_WORKERS_LAST: &str = "exec_workers_last";
/// Wall-clock nanoseconds workers spent running jobs.
pub const EXEC_WORKER_BUSY_NANOS_TOTAL: &str = "exec_worker_busy_nanos_total";
/// Wall-clock nanoseconds workers spent waiting for work.
pub const EXEC_WORKER_IDLE_NANOS_TOTAL: &str = "exec_worker_idle_nanos_total";
/// Seeded retries after a job panic.
pub const EXEC_JOB_RETRIES_TOTAL: &str = "exec_job_retries_total";
/// Job panics caught by the pool's isolation boundary.
pub const EXEC_JOB_PANICS_TOTAL: &str = "exec_job_panics_total";
/// Watchdog deadline expiries that triggered cancellation.
pub const EXEC_WATCHDOG_FIRED_TOTAL: &str = "exec_watchdog_fired_total";

// --- plan cache ---------------------------------------------------------

/// BFS-tree cache hits.
pub const PLAN_CACHE_HITS_TOTAL: &str = "plan_cache_hits_total";
/// BFS-tree cache misses (tree computed fresh).
pub const PLAN_CACHE_MISSES_TOTAL: &str = "plan_cache_misses_total";
/// Evictions under the cache's capacity bound.
pub const PLAN_CACHE_EVICTIONS_TOTAL: &str = "plan_cache_evictions_total";
/// Resident entries at publish time (gauge).
pub const PLAN_CACHE_ENTRIES: &str = "plan_cache_entries";

// --- compiled router ----------------------------------------------------

/// Router batch runs.
pub const ROUTER_RUNS_TOTAL: &str = "router_runs_total";
/// Simulated ticks across all runs.
pub const ROUTER_TICKS_TOTAL: &str = "router_ticks_total";
/// Packets delivered.
pub const ROUTER_DELIVERED_TOTAL: &str = "router_delivered_total";
/// Packets injected.
pub const ROUTER_PACKETS_TOTAL: &str = "router_packets_total";
/// Hops traversed by delivered packets.
pub const ROUTER_HOPS_TOTAL: &str = "router_hops_total";
/// Packet-ticks spent stalled in queues.
pub const ROUTER_STALLED_PACKET_TICKS_TOTAL: &str = "router_stalled_packet_ticks_total";
/// Runs that terminated without completing delivery.
pub const ROUTER_ABORTS_TOTAL: &str = "router_aborts_total";
/// Aborts attributed to the max-ticks bound.
pub const ROUTER_ABORT_MAX_TICKS_TOTAL: &str = "router_abort_max_ticks_total";
/// Aborts attributed to permanently stranded packets.
pub const ROUTER_ABORT_STRANDED_TOTAL: &str = "router_abort_stranded_total";
/// Aborts attributed to cooperative cancellation.
pub const ROUTER_ABORT_CANCELLED_TOTAL: &str = "router_abort_cancelled_total";
/// Packets stranded by dead wires at injection.
pub const ROUTER_STRANDED_PACKETS_TOTAL: &str = "router_stranded_packets_total";
/// Send attempts gated off by fault outage windows.
pub const ROUTER_FAULTS_GATED_TOTAL: &str = "router_faults_gated_total";
/// Per-run maximum queue depth (histogram).
pub const ROUTER_RUN_MAX_QUEUE: &str = "router_run_max_queue";
/// Queue occupancy samples (histogram).
pub const ROUTER_QUEUE_OCCUPANCY: &str = "router_queue_occupancy";
/// Scratch arenas created (first run on a pooled scratch).
pub const ROUTER_SCRATCH_CREATED_TOTAL: &str = "router_scratch_created_total";
/// Scratch arenas reused without reallocation.
pub const ROUTER_SCRATCH_REUSED_TOTAL: &str = "router_scratch_reused_total";
/// Sharded router runs (K ≥ 2 shard workers).
pub const ROUTER_SHARDED_RUNS_TOTAL: &str = "router_sharded_runs_total";
/// Shard count of the most recent sharded run (gauge).
pub const ROUTER_SHARDS_LAST: &str = "router_shards_last";
/// Packets that crossed a shard boundary during the per-tick exchange.
pub const ROUTER_BOUNDARY_MSGS_TOTAL: &str = "router_boundary_msgs_total";
/// Per-shard maximum queue depth, recorded in shard order (histogram).
pub const ROUTER_SHARD_MAX_QUEUE: &str = "router_shard_max_queue";
/// Event-backend runs (`route_events` entry points).
pub const ROUTER_EVENTS_TOTAL: &str = "router_events_total";
/// Ticks the event backend skipped instead of simulating.
pub const ROUTER_TICKS_SKIPPED_TOTAL: &str = "router_ticks_skipped_total";
/// Per-run peak event-wheel depth (histogram).
pub const ROUTER_WHEEL_MAX_DEPTH: &str = "router_wheel_max_depth";
/// Fault outage windows skipped over entirely by the event backend.
pub const ROUTER_OUTAGE_WINDOWS_SKIPPED_TOTAL: &str = "router_outage_windows_skipped_total";

// --- fault plane --------------------------------------------------------

/// Fault plans overlaid onto compiled nets.
pub const FAULT_PLANS_APPLIED_TOTAL: &str = "fault_plans_applied_total";
/// Wires killed permanently by applied plans.
pub const FAULT_DEAD_WIRES_TOTAL: &str = "fault_dead_wires_total";
/// Processors killed permanently by applied plans.
pub const FAULT_DEAD_NODES_TOTAL: &str = "fault_dead_nodes_total";
/// Transient outage windows scheduled by applied plans.
pub const FAULT_OUTAGE_WINDOWS_TOTAL: &str = "fault_outage_windows_total";

// --- fault-aware planner ------------------------------------------------

/// Demands re-planned by BFS around dead wires.
pub const PLANNER_REPLANS_TOTAL: &str = "planner_replans_total";
/// Demands with no surviving route.
pub const PLANNER_UNREACHABLE_TOTAL: &str = "planner_unreachable_total";

// --- bandwidth estimator ------------------------------------------------

/// Span around one full β estimate.
pub const SPAN_BANDWIDTH_ESTIMATE: &str = "bandwidth_estimate";
/// Completed β estimates.
pub const BANDWIDTH_ESTIMATES_TOTAL: &str = "bandwidth_estimates_total";
/// Trials attempted across estimates.
pub const BANDWIDTH_TRIALS_TOTAL: &str = "bandwidth_trials_total";
/// Trials whose batches all completed.
pub const BANDWIDTH_COMPLETE_TRIALS_TOTAL: &str = "bandwidth_complete_trials_total";
/// Saturation-grid cells measured.
pub const BANDWIDTH_CELLS_TOTAL: &str = "bandwidth_cells_total";
/// Ticks consumed reaching saturation.
pub const BANDWIDTH_SATURATION_TICKS_TOTAL: &str = "bandwidth_saturation_ticks_total";
/// Per-cell tick counts (histogram).
pub const BANDWIDTH_CELL_TICKS: &str = "bandwidth_cell_ticks";

// --- degraded sweeps ----------------------------------------------------

/// Span around one β-vs-fault-rate sweep.
pub const SPAN_DEGRADED_BETA_SWEEP: &str = "degraded_beta_sweep";
/// Fault-rate points measured.
pub const DEGRADED_POINTS_TOTAL: &str = "degraded_points_total";
/// Grid cells measured across all points.
pub const DEGRADED_CELLS_TOTAL: &str = "degraded_cells_total";
/// Packets stranded during degraded runs.
pub const DEGRADED_STRANDED_TOTAL: &str = "degraded_stranded_total";
/// Demands unreachable during degraded planning.
pub const DEGRADED_UNREACHABLE_TOTAL: &str = "degraded_unreachable_total";
/// BFS replans during degraded planning.
pub const DEGRADED_REPLANS_TOTAL: &str = "degraded_replans_total";
/// Cells that ended in a non-Completed abort.
pub const DEGRADED_ABORTED_CELLS_TOTAL: &str = "degraded_aborted_cells_total";
/// Ticks consumed by degraded cells.
pub const DEGRADED_CELL_TICKS_TOTAL: &str = "degraded_cell_ticks_total";

// --- emulation service --------------------------------------------------

/// Requests accepted by the service's admission gate.
pub const SERVE_REQUESTS_TOTAL: &str = "serve_requests_total";
/// Requests rejected with a framed `Overloaded` error.
pub const SERVE_OVERLOADED_TOTAL: &str = "serve_overloaded_total";
/// Requests aborted by their per-request deadline.
pub const SERVE_DEADLINE_CANCELLED_TOTAL: &str = "serve_deadline_cancelled_total";
/// Requests that returned a framed error of any kind.
pub const SERVE_ERRORS_TOTAL: &str = "serve_errors_total";
/// Compiled nets resident in the service registry (gauge).
pub const SERVE_REGISTRY_NETS: &str = "serve_registry_nets";
/// Requests served from an already-compiled registry net.
pub const SERVE_REGISTRY_HITS_TOTAL: &str = "serve_registry_hits_total";
/// Requests that compiled a net into the registry.
pub const SERVE_REGISTRY_MISSES_TOTAL: &str = "serve_registry_misses_total";
/// Connections accepted by the listener.
pub const SERVE_CONNECTIONS_TOTAL: &str = "serve_connections_total";
/// Requests still in flight when a drain began (gauge).
pub const SERVE_DRAIN_INFLIGHT: &str = "serve_drain_inflight";
/// Heavy requests that waited in the admission queue before running.
pub const SERVE_QUEUED_TOTAL: &str = "serve_queued_total";
/// Requests shed because the admission queue was full.
pub const SERVE_SHED_FULL_TOTAL: &str = "serve_shed_full_total";
/// Requests shed because their queue-wait budget (or deadline) expired.
pub const SERVE_SHED_DEADLINE_TOTAL: &str = "serve_shed_deadline_total";
/// Retried requests answered from the idempotent reply cache.
pub const SERVE_REPLAYED_TOTAL: &str = "serve_replayed_total";
/// Client-side retry attempts after a transport or overload failure.
pub const SERVE_RETRY_ATTEMPTS_TOTAL: &str = "serve_retry_attempts_total";
/// Client-side requests that exhausted their retry budget.
pub const SERVE_RETRY_EXHAUSTED_TOTAL: &str = "serve_retry_exhausted_total";

// --- wire chaos ---------------------------------------------------------

/// Connection resets injected by a seeded chaos plan.
pub const CHAOS_RESETS_TOTAL: &str = "chaos_resets_total";
/// Write stalls injected by a seeded chaos plan.
pub const CHAOS_STALLS_TOTAL: &str = "chaos_stalls_total";
/// Truncated frames injected by a seeded chaos plan.
pub const CHAOS_TRUNCATIONS_TOTAL: &str = "chaos_truncations_total";
/// Corrupted frames injected by a seeded chaos plan.
pub const CHAOS_CORRUPTIONS_TOTAL: &str = "chaos_corruptions_total";

/// Every name above, for exhaustive tests (uniqueness, conventions).
pub const ALL: &[&str] = &[
    EXEC_RUNS_TOTAL,
    EXEC_JOBS_TOTAL,
    EXEC_WORKERS_LAST,
    EXEC_WORKER_BUSY_NANOS_TOTAL,
    EXEC_WORKER_IDLE_NANOS_TOTAL,
    EXEC_JOB_RETRIES_TOTAL,
    EXEC_JOB_PANICS_TOTAL,
    EXEC_WATCHDOG_FIRED_TOTAL,
    PLAN_CACHE_HITS_TOTAL,
    PLAN_CACHE_MISSES_TOTAL,
    PLAN_CACHE_EVICTIONS_TOTAL,
    PLAN_CACHE_ENTRIES,
    ROUTER_RUNS_TOTAL,
    ROUTER_TICKS_TOTAL,
    ROUTER_DELIVERED_TOTAL,
    ROUTER_PACKETS_TOTAL,
    ROUTER_HOPS_TOTAL,
    ROUTER_STALLED_PACKET_TICKS_TOTAL,
    ROUTER_ABORTS_TOTAL,
    ROUTER_ABORT_MAX_TICKS_TOTAL,
    ROUTER_ABORT_STRANDED_TOTAL,
    ROUTER_ABORT_CANCELLED_TOTAL,
    ROUTER_STRANDED_PACKETS_TOTAL,
    ROUTER_FAULTS_GATED_TOTAL,
    ROUTER_RUN_MAX_QUEUE,
    ROUTER_QUEUE_OCCUPANCY,
    ROUTER_SCRATCH_CREATED_TOTAL,
    ROUTER_SCRATCH_REUSED_TOTAL,
    ROUTER_SHARDED_RUNS_TOTAL,
    ROUTER_SHARDS_LAST,
    ROUTER_BOUNDARY_MSGS_TOTAL,
    ROUTER_SHARD_MAX_QUEUE,
    ROUTER_EVENTS_TOTAL,
    ROUTER_TICKS_SKIPPED_TOTAL,
    ROUTER_WHEEL_MAX_DEPTH,
    ROUTER_OUTAGE_WINDOWS_SKIPPED_TOTAL,
    FAULT_PLANS_APPLIED_TOTAL,
    FAULT_DEAD_WIRES_TOTAL,
    FAULT_DEAD_NODES_TOTAL,
    FAULT_OUTAGE_WINDOWS_TOTAL,
    PLANNER_REPLANS_TOTAL,
    PLANNER_UNREACHABLE_TOTAL,
    SPAN_BANDWIDTH_ESTIMATE,
    BANDWIDTH_ESTIMATES_TOTAL,
    BANDWIDTH_TRIALS_TOTAL,
    BANDWIDTH_COMPLETE_TRIALS_TOTAL,
    BANDWIDTH_CELLS_TOTAL,
    BANDWIDTH_SATURATION_TICKS_TOTAL,
    BANDWIDTH_CELL_TICKS,
    SPAN_DEGRADED_BETA_SWEEP,
    DEGRADED_POINTS_TOTAL,
    DEGRADED_CELLS_TOTAL,
    DEGRADED_STRANDED_TOTAL,
    DEGRADED_UNREACHABLE_TOTAL,
    DEGRADED_REPLANS_TOTAL,
    DEGRADED_ABORTED_CELLS_TOTAL,
    DEGRADED_CELL_TICKS_TOTAL,
    SERVE_REQUESTS_TOTAL,
    SERVE_OVERLOADED_TOTAL,
    SERVE_DEADLINE_CANCELLED_TOTAL,
    SERVE_ERRORS_TOTAL,
    SERVE_REGISTRY_NETS,
    SERVE_REGISTRY_HITS_TOTAL,
    SERVE_REGISTRY_MISSES_TOTAL,
    SERVE_CONNECTIONS_TOTAL,
    SERVE_DRAIN_INFLIGHT,
    SERVE_QUEUED_TOTAL,
    SERVE_SHED_FULL_TOTAL,
    SERVE_SHED_DEADLINE_TOTAL,
    SERVE_REPLAYED_TOTAL,
    SERVE_RETRY_ATTEMPTS_TOTAL,
    SERVE_RETRY_EXHAUSTED_TOTAL,
    CHAOS_RESETS_TOTAL,
    CHAOS_STALLS_TOTAL,
    CHAOS_TRUNCATIONS_TOTAL,
    CHAOS_CORRUPTIONS_TOTAL,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for n in ALL {
            assert!(seen.insert(*n), "duplicate metric name `{n}`");
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "non-snake-case metric name `{n}`"
            );
            assert!(!n.starts_with('_') && !n.ends_with('_'), "bad edges `{n}`");
        }
    }
}
