#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-telemetry — deterministic observability for the fcn-emu workspace
//!
//! A zero-overhead-when-disabled metrics subsystem: atomic counters, gauges,
//! and fixed-bucket histograms in a [`MetricsRegistry`]; scoped [`Span`]
//! timers; and thread-local [`LocalShard`]s that `fcn-exec` merges in job
//! index order. Design invariants:
//!
//! 1. **Disabled means free.** The [`global`] registry starts disabled, and
//!    every instrumented hot path checks [`MetricsRegistry::enabled`] (one
//!    relaxed load) before doing any collection work. The
//!    `telemetry_overhead` perfbench row pins the disabled path to <1% on
//!    the mesh2(64) saturation benchmark.
//! 2. **Telemetry never perturbs the simulation.** Collection only *reads*
//!    simulation state; no simulated bit depends on whether metrics are on.
//!    `crates/routing/tests/telemetry_determinism.rs` asserts byte-identical
//!    outcomes with telemetry on vs off at `--jobs 1` and `--jobs 4`.
//! 3. **Metrics themselves are worker-count-independent.** Everything is
//!    `u64` addition (histograms merge bucket-wise), so per-worker shards
//!    merged in index order give the same totals as a single-threaded run —
//!    property-tested in `tests/shard_merge.rs`. The only exceptions are
//!    wall-clock measurements (spans, busy/idle nanos), which
//!    [`MetricsSnapshot::without_wall_clock`] strips for comparisons.
//! 4. **Snapshots are versioned.** JSONL exports carry
//!    [`SNAPSHOT_SCHEMA`] and validate on read
//!    ([`MetricsSnapshot::from_jsonl`]); a Prometheus text exposition is
//!    available via [`MetricsSnapshot::to_prometheus`] (`fcnemu metrics
//!    --format prom`).

pub mod hist;
pub mod lockdep;
pub mod names;
pub mod registry;
pub mod shard;
pub mod snapshot;
pub mod span;

pub use hist::{bucket_index, bucket_upper_bound, LocalHistogram, HIST_BUCKETS};
pub use registry::{global, Counter, Gauge, Histogram, MetricsRegistry};
pub use shard::{flush_thread_shard, put_shard, take_shard, with_shard, LocalShard, SpanStat};
pub use snapshot::{MetricsSnapshot, SNAPSHOT_SCHEMA};
pub use span::Span;
