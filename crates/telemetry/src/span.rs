//! Scoped span timers.
//!
//! A [`Span`] measures the wall-clock time of a lexical scope and records it
//! into the current thread's shard on drop. When the global registry is
//! disabled, [`Span::enter`] is a single relaxed load plus a `None` — no
//! clock read, no shard access — which is what keeps instrumented call
//! sites free on the disabled path.
//!
//! Span timings are *observability only*: they are wall-clock measurements
//! and therefore not reproducible run-to-run, unlike every counter and
//! histogram in the workspace. They are exported as
//! `span_{name}_calls_total` / `span_{name}_nanos_total` counter pairs,
//! and determinism tests compare snapshots with span metrics excluded.

use std::time::Instant;

use crate::registry::global;
use crate::shard::with_shard;

/// A scoped timer; records into the thread shard when dropped.
///
/// ```
/// {
///     let _span = fcn_telemetry::Span::enter("compile");
///     // ... timed work ...
/// } // recorded here (if telemetry is enabled)
/// ```
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Start a span named `name`. Reads the clock only when the global
    /// registry is enabled.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        // Wall clock allowed: spans exist to measure wall time, and
        // span durations are excluded from determinism comparisons.
        #[allow(clippy::disallowed_methods)]
        let start = if global().enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span { name, start }
    }

    /// True when this span is actually timing (telemetry was enabled at
    /// entry).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_shard(|s| s.record_span(self.name, nanos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::take_shard;

    #[test]
    fn disabled_span_records_nothing() {
        // The global registry starts disabled in a fresh process, but other
        // tests may have enabled it; only assert on the disabled branch.
        if global().enabled() {
            return;
        }
        let _ = take_shard();
        {
            let span = Span::enter("noop");
            assert!(!span.is_active());
        }
        assert!(take_shard().is_empty());
    }
}
