//! The differential chaos pin: a retrying client driving a chaos-wrapped
//! daemon must recover **byte-identical** response payloads to a clean
//! single-attempt run — including the final `metrics` render, which proves
//! the server's request-ordered registry saw exactly one execution per
//! logical request (lost replies were replayed from the idempotency cache,
//! never re-run).
//!
//! Both daemons run in-process with the production [`CliHandler`], so the
//! payloads under comparison are the real `fcnemu` report bytes. The whole
//! run is deterministic: the chaos plan is a pure function of (seed, rates,
//! connection index, frame index), and the sequential client makes the
//! connection/frame sequence reproducible — if this test passes once, it
//! passes always.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fcn_cli::service::CliHandler;
use fcn_serve::{ChaosRates, ChaosSpec, Client, ErrorKind, RetryPolicy, Server, ServerConfig};

/// One in-process daemon and the handle to stop it.
struct Inproc {
    server: Arc<Server<CliHandler>>,
    shutdown: Arc<AtomicBool>,
    runner: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    addr: String,
}

impl Inproc {
    fn start(chaos: Option<ChaosSpec>) -> Inproc {
        let config = ServerConfig {
            chaos,
            ..ServerConfig::default()
        };
        let server = Arc::new(Server::bind(config, CliHandler::new()).expect("bind"));
        let addr = server.local_addr().expect("local addr").to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let runner = {
            let server = Arc::clone(&server);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || server.run(&shutdown))
        };
        Inproc {
            server,
            shutdown,
            runner: Some(runner),
            addr,
        }
    }
}

impl Drop for Inproc {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.runner.take() {
            let _ = h.join().map(|r| r.expect("serve loop"));
        }
    }
}

/// The request matrix from the acceptance criteria: heavy kinds at jobs
/// {1, 4} and backends {tick, events}, followed by a `metrics` render.
fn request_matrix() -> Vec<(&'static str, Vec<String>)> {
    let mut matrix = Vec::new();
    for backend in ["tick", "events"] {
        for jobs in ["1", "4"] {
            let tail = ["--jobs", jobs, "--backend", backend];
            let with_tail = |head: &[&str]| -> Vec<String> {
                head.iter()
                    .chain(tail.iter())
                    .map(|s| s.to_string())
                    .collect()
            };
            matrix.push(("beta", with_tail(&["mesh2", "16", "--trials", "1"])));
            matrix.push(("audit", with_tail(&["ring", "16"])));
            matrix.push(("faults", with_tail(&["ring", "16", "--quick"])));
        }
    }
    matrix.push(("metrics", Vec::new()));
    matrix
}

fn drive(client: &mut Client, matrix: &[(&'static str, Vec<String>)]) -> Vec<(i32, String)> {
    matrix
        .iter()
        .map(|(kind, args)| {
            let argv: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            let resp = client
                .call(kind, &argv)
                .unwrap_or_else(|e| panic!("kind {kind:?} args {args:?} failed terminally: {e}"));
            assert!(resp.ok, "kind {kind:?} returned a framed error: {resp:?}");
            (resp.exit_code, resp.output)
        })
        .collect()
}

#[test]
fn retrying_client_recovers_byte_identical_payloads_under_chaos() {
    let matrix = request_matrix();

    // Clean reference: no chaos, single-attempt client.
    let clean = Inproc::start(None);
    let mut clean_client = Client::connect(&clean.addr).expect("connect clean");
    let clean_payloads = drive(&mut clean_client, &matrix);

    // Chaos run: a fixed seeded plan injecting every fault category on the
    // reply path, driven by the retrying client.
    let spec = ChaosSpec::new(0x00c4_a05e_ed01, ChaosRates::uniform(0.15));
    let chaos = Inproc::start(Some(spec));
    let mut chaos_client =
        Client::connect_retrying(&chaos.addr, RetryPolicy::fast(30, 0xbacc_0ff5)).expect("connect");
    let chaos_payloads = drive(&mut chaos_client, &matrix);

    for (i, ((kind, args), (clean_p, chaos_p))) in matrix
        .iter()
        .zip(clean_payloads.iter().zip(chaos_payloads.iter()))
        .enumerate()
    {
        assert_eq!(
            clean_p, chaos_p,
            "request {i} ({kind:?} {args:?}) diverged between clean and chaos runs"
        );
    }

    // The matrix must actually have exercised injection; then churn cheap
    // interactive requests (they never touch the ordered registry, so the
    // metrics comparison above stays untainted) until every fault category
    // has fired at least once under this fixed seed.
    let stats = Arc::clone(chaos.server.chaos_stats().expect("plan configured"));
    assert!(stats.total() > 0, "chaos plan never injected anything");
    let mut churn = 0u32;
    while [
        stats.resets(),
        stats.stalls(),
        stats.truncations(),
        stats.corruptions(),
    ]
    .contains(&0)
    {
        churn += 1;
        assert!(
            churn <= 2000,
            "some fault category never fired: resets {} stalls {} truncations {} corruptions {}",
            stats.resets(),
            stats.stalls(),
            stats.truncations(),
            stats.corruptions()
        );
        let resp = chaos_client
            .call("health", &[])
            .expect("health under chaos");
        assert!(resp.ok);
    }

    // The health render reflects the same counters the plan recorded.
    let health = chaos_client.call("health", &[]).expect("final health");
    assert!(
        health.output.contains("chaos_resets_total"),
        "{}",
        health.output
    );
    assert!(
        health
            .output
            .lines()
            .any(|l| l.starts_with("replayed_total") && !l.ends_with(": 0")),
        "lost replies should have been replayed from the cache:\n{}",
        health.output
    );
}

#[test]
fn corrupted_frames_surface_as_typed_errors_never_misparsed_replies() {
    // Corruption-only plan at a high rate: the single-attempt client must
    // see a typed transport/protocol error on every injected frame, never
    // an `Ok` response with mangled content.
    let spec = ChaosSpec::new(
        7,
        ChaosRates {
            reset: 0.0,
            stall: 0.0,
            truncate: 0.0,
            corrupt: 0.9,
        },
    );
    let daemon = Inproc::start(Some(spec));
    let stats = Arc::clone(daemon.server.chaos_stats().expect("plan configured"));
    let mut corrupted_seen = 0u32;
    for i in 0..40u32 {
        let mut client = Client::connect(&daemon.addr).expect("connect");
        let before = stats.corruptions();
        match client.call("ping", &[]) {
            Ok(resp) => {
                assert_eq!(
                    stats.corruptions(),
                    before,
                    "iteration {i}: a corrupted frame parsed as a reply: {resp:?}"
                );
                assert!(resp.ok);
                assert_eq!(resp.output, "pong\n");
            }
            Err(e) => {
                assert!(
                    stats.corruptions() > before,
                    "iteration {i}: error without injection: {e}"
                );
                corrupted_seen += 1;
            }
        }
    }
    assert!(
        corrupted_seen >= 10,
        "corruption rate 0.9 but only {corrupted_seen}/40 frames were detected"
    );

    // And the retrying client digs through the same plan to the real reply
    // (at rate 0.9 nearly every fresh connection corrupts its first reply
    // frame, so the budget must cover a long deterministic streak).
    let mut retrying =
        Client::connect_retrying(&daemon.addr, RetryPolicy::fast(100, 1)).expect("connect");
    let resp = retrying
        .call("ping", &[])
        .expect("retry through corruption");
    assert!(resp.ok);
    assert_eq!(resp.output, "pong\n");
}

#[test]
fn overload_sheds_typed_while_interactive_kinds_stay_responsive() {
    // A tiny daemon: one slot, no queue. Saturate it with a slow beta and
    // verify heavy requests shed typed Overloaded{retry_after_ms} while
    // ping/metrics/health keep answering.
    let config = ServerConfig {
        max_inflight: 1,
        max_queued: 0,
        queue_wait_ms: 25,
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::bind(config, CliHandler::new()).expect("bind"));
    let addr = server.local_addr().expect("addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let runner = {
        let server = Arc::clone(&server);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || server.run(&shutdown))
    };

    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect blocker");
            client.call("beta", &["mesh2", "32", "--trials", "2"])
        })
    };
    // Wait until the slot is actually occupied.
    let mut probe = Client::connect(&addr).expect("connect probe");
    loop {
        let health = probe.call("health", &[]).expect("health");
        if health.output.contains("inflight                : 1") {
            break;
        }
        std::hint::spin_loop();
    }
    // Heavy request: shed, typed, with a retry hint.
    let shed = probe.call("audit", &["ring", "8"]).expect("framed shed");
    assert!(!shed.ok);
    let err = shed.error.expect("typed error");
    assert_eq!(err.kind, ErrorKind::Overloaded);
    assert!(err.retry_after_ms.is_some(), "hint missing: {err:?}");
    // Interactive kinds answer immediately on a saturated daemon.
    assert!(probe.call("ping", &[]).expect("ping").ok);
    assert!(probe.call("metrics", &[]).expect("metrics").ok);
    let resp = blocker.join().expect("join blocker").expect("blocker call");
    assert!(resp.ok, "saturating request must still complete: {resp:?}");
    shutdown.store(true, Ordering::SeqCst);
    runner.join().expect("join runner").expect("serve loop");
}
