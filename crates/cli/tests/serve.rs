//! Differential harness for service mode: every request kind served by a
//! real `fcnemu serve` daemon process must return **byte-identical** output
//! (and the same exit code) as the inline `fcnemu` invocation of the same
//! command, across the jobs × shards × backend grid, under concurrent
//! interleaved clients, and through the typed failure paths (overload,
//! deadline cancellation, SIGTERM drain).

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};

use fcn_serve::{Client, ErrorKind, Request};

/// A live `fcnemu serve` child process plus its resolved address.
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fcnemu"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn fcnemu serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read announce line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
            .to_string();
        Daemon {
            child,
            stdout,
            addr,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to daemon")
    }

    /// Send SIGTERM and wait for the graceful drain; asserts exit 0 and the
    /// goodbye line.
    fn shutdown(mut self) {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let exit = self.child.wait().expect("wait for daemon");
        assert_eq!(exit.code(), Some(0), "drain must exit 0, got {exit:?}");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drain output");
        assert!(
            rest.contains("drained cleanly"),
            "missing drain goodbye, got {rest:?}"
        );
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Run the inline CLI in-process, capturing exit code and output bytes.
fn inline(argv: &[&str]) -> (i32, String) {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = fcn_cli::run(&argv, &mut buf);
    (
        code,
        String::from_utf8(buf).expect("inline output is UTF-8"),
    )
}

/// Assert one daemon request is byte- and exit-code-identical to inline.
fn assert_differential(client: &mut Client, kind: &str, args: &[&str]) {
    let resp = client.call(kind, args).expect("framed response");
    let mut argv = vec![kind];
    argv.extend_from_slice(args);
    let (code, text) = inline(&argv);
    assert_eq!(
        resp.output, text,
        "daemon output diverged from inline for {argv:?}"
    );
    assert_eq!(
        resp.exit_code, code,
        "daemon exit code diverged from inline for {argv:?}"
    );
}

#[test]
fn daemon_matches_inline_across_the_grid() {
    let daemon = Daemon::start(&[]);
    let mut client = daemon.client();
    assert_eq!(client.call("ping", &[]).unwrap().output, "pong\n");
    for jobs in ["1", "4"] {
        for shards in ["1", "4"] {
            for backend in ["tick", "events"] {
                if backend == "events" && shards != "1" {
                    continue; // CLI-rejected combination, pinned below
                }
                let grid = ["--jobs", jobs, "--shards", shards, "--backend", backend];
                let with = |head: &[&'static str]| -> Vec<&str> {
                    let mut v = head.to_vec();
                    v.extend_from_slice(&grid);
                    v
                };
                assert_differential(
                    &mut client,
                    "beta",
                    &with(&["mesh2", "36", "--trials", "2"]),
                );
                assert_differential(&mut client, "audit", &with(&["mesh2", "36"]));
                assert_differential(
                    &mut client,
                    "faults",
                    &with(&[
                        "mesh2", "36", "--rates", "0.0,0.05", "--trials", "2", "--quick",
                    ]),
                );
            }
        }
    }
    // The rejected events+shards combination produces the identical error
    // bytes and exit code through the daemon.
    assert_differential(
        &mut client,
        "beta",
        &["mesh2", "36", "--shards", "4", "--backend", "events"],
    );
    // So does a malformed family (domain error, exit 1).
    assert_differential(&mut client, "beta", &["no_such_family", "36"]);
    daemon.shutdown();
}

#[test]
fn concurrent_interleaved_clients_get_their_own_answers() {
    let daemon = Daemon::start(&["--max-inflight", "8"]);
    std::thread::scope(|scope| {
        for seed in ["1", "7", "99", "4242"] {
            let addr = daemon.addr.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for trials in ["1", "2", "3"] {
                    let args = ["mesh2", "36", "--trials", trials, "--seed", seed];
                    let resp = client.call("beta", &args).expect("response");
                    let (code, text) =
                        inline(&["beta", "mesh2", "36", "--trials", trials, "--seed", seed]);
                    assert_eq!(resp.output, text, "seed {seed} trials {trials}");
                    assert_eq!(resp.exit_code, code);
                }
            });
        }
    });
    daemon.shutdown();
}

#[test]
fn metrics_render_matches_the_inline_renderer() {
    let daemon = Daemon::start(&[]);
    let mut client = daemon.client();
    // Put some traffic on the board first.
    assert!(
        client
            .call("beta", &["mesh2", "36", "--trials", "2"])
            .unwrap()
            .ok
    );
    assert!(client.call("audit", &["mesh2", "36"]).unwrap().ok);
    let jsonl = client.call("metrics", &[]).unwrap();
    assert!(jsonl.ok);
    // Pin: the daemon's prom rendering equals feeding the daemon's own
    // JSONL snapshot through `fcnemu metrics --format prom` inline.
    let path = std::env::temp_dir().join(format!("fcn-serve-diff-{}.jsonl", std::process::id()));
    std::fs::write(&path, &jsonl.output).unwrap();
    let (code, inline_prom) = inline(&["metrics", path.to_str().unwrap(), "--format", "prom"]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 0);
    let daemon_prom = client.call("metrics", &["--format", "prom"]).unwrap();
    assert_eq!(
        daemon_prom.output, inline_prom,
        "daemon prom text must equal the inline renderer's view of the same snapshot"
    );
    // The snapshot actually carries the service counters.
    assert!(
        inline_prom.contains("serve_requests_total"),
        "{inline_prom}"
    );
    daemon.shutdown();
}

#[test]
fn overload_is_a_typed_framed_rejection() {
    let daemon = Daemon::start(&["--max-inflight", "1"]);
    let addr = daemon.addr.clone();
    // A ~seconds-long request to occupy the single admission slot.
    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(&addr).expect("connect blocker");
        client
            .call("beta", &["mesh2", "4096", "--trials", "3"])
            .expect("blocker response")
    });
    // Probe until the blocker holds the slot: small requests reply in
    // milliseconds, the blocker runs for seconds, so an Overloaded
    // rejection must surface long before the blocker finishes.
    let mut client = daemon.client();
    let mut saw_overloaded = false;
    for _ in 0..10_000 {
        let resp = client
            .call("beta", &["mesh2", "16", "--trials", "1"])
            .expect("probe response");
        if let Some(err) = &resp.error {
            assert_eq!(err.kind, ErrorKind::Overloaded);
            assert!(err.message.contains("retry later"), "{}", err.message);
            saw_overloaded = true;
            break;
        }
        if blocker.is_finished() {
            break;
        }
    }
    assert!(
        saw_overloaded,
        "never observed a typed Overloaded rejection while the slot was held"
    );
    // The blocker's own reply is intact despite the rejections around it.
    let resp = blocker.join().expect("blocker thread");
    assert!(resp.ok);
    assert!(resp.output.contains("measured β̂"), "{}", resp.output);
    daemon.shutdown();
}

#[test]
fn deadline_expiry_is_cancelled_with_partial_accounting() {
    let daemon = Daemon::start(&[]);
    let mut client = daemon.client();
    let mut req = Request::new(0, "beta", &["mesh2", "4096", "--trials", "3"]);
    req.deadline_ms = Some(1);
    let resp = client.request(req).expect("framed response");
    assert!(!resp.ok);
    let err = resp.error.expect("typed error");
    assert_eq!(err.kind, ErrorKind::Cancelled);
    assert!(
        err.message.contains("deadline of 1 ms expired") && err.message.contains("cells"),
        "cancellation must carry partial accounting, got {:?}",
        err.message
    );
    // The daemon keeps serving after a cancellation.
    assert!(client.call("ping", &[]).unwrap().ok);
    daemon.shutdown();
}

#[test]
fn sigterm_drain_finishes_the_inflight_request() {
    let daemon = Daemon::start(&["--max-inflight", "1"]);
    let addr = daemon.addr.clone();
    let straddler = std::thread::spawn(move || {
        let mut client = Client::connect(&addr).expect("connect straddler");
        client
            .call("beta", &["mesh2", "4096", "--trials", "3"])
            .expect("straddler response")
    });
    // Wait until the straddler is definitely admitted (the slot rejects us).
    let mut client = daemon.client();
    loop {
        let resp = client
            .call("beta", &["mesh2", "16", "--trials", "1"])
            .expect("probe response");
        if resp.error.is_some() {
            break;
        }
        assert!(!straddler.is_finished(), "straddler finished before probe");
    }
    // SIGTERM mid-request: the drain must let it finish and reply fully.
    daemon.shutdown();
    let resp = straddler.join().expect("straddler thread");
    assert!(
        resp.ok,
        "straddling request must complete through the drain"
    );
    let (_, text) = inline(&["beta", "mesh2", "4096", "--trials", "3"]);
    assert_eq!(
        resp.output, text,
        "drained reply must still be byte-identical"
    );
}
