//! Minimal argument parsing: `fcnemu <command> [positionals] [--flag value]`.
//!
//! The grammar is fixed and small, so a hand-rolled parser keeps the
//! dependency set to the workspace's approved crates.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Subcommand name (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
    /// `--flag[=value]` pairs (bare flags store `"true"`).
    pub flags: BTreeMap<String, String>,
    /// Everything after a literal `--` separator, verbatim and unparsed —
    /// `fcnemu request <addr> <kind> -- <forwarded args>` ships these to
    /// the daemon without this parser interpreting their `--flags`.
    pub rest: Vec<String>,
}

/// Parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Args {
    /// Parse `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
        let mut it = argv.iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ParseError("missing command".into()))?
            .clone();
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        let mut rest = Vec::new();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    // A bare `--` ends parsing; the remainder passes through.
                    rest.extend(it.cloned());
                    break;
                }
                // `--flag=value` or `--flag value` or bare boolean flag.
                if let Some((k, v)) = name.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else if let Some(v) = it.next_if(|n| !n.starts_with("--")) {
                    flags.insert(name.to_string(), v.clone());
                } else {
                    flags.insert(name.to_string(), "true".to_string());
                }
            } else {
                positionals.push(tok.clone());
            }
        }
        Ok(Args {
            command,
            positionals,
            flags,
            rest,
        })
    }

    /// Required positional by index.
    pub fn pos(&self, i: usize, what: &str) -> Result<&str, ParseError> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| ParseError(format!("missing <{what}> argument")))
    }

    /// Optional flag parsed into `T`.
    pub fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ParseError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("invalid value for --{name}: {v:?}"))),
        }
    }

    /// Boolean flag (present without a value, or `--flag true`).
    pub fn has(&self, name: &str) -> bool {
        self.flags.get(name).is_some_and(|v| v != "false")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(&argv("beta mesh2 256 --trials 4 --steady")).unwrap();
        assert_eq!(a.command, "beta");
        assert_eq!(a.positionals, vec!["mesh2", "256"]);
        assert_eq!(a.flag::<usize>("trials", 1).unwrap(), 4);
        assert!(a.has("steady"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn parses_equals_form() {
        let a = Args::parse(&argv("build tree 63 --format=dot")).unwrap();
        assert_eq!(a.flags.get("format").unwrap(), "dot");
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(Args::parse(&[]).is_err());
    }

    #[test]
    fn flag_type_errors_are_reported() {
        let a = Args::parse(&argv("beta mesh2 256 --trials many")).unwrap();
        let err = a.flag::<usize>("trials", 1).unwrap_err();
        assert!(err.0.contains("trials"));
    }

    #[test]
    fn pos_accessor_errors() {
        let a = Args::parse(&argv("bound de_bruijn")).unwrap();
        assert_eq!(a.pos(0, "guest").unwrap(), "de_bruijn");
        assert!(a.pos(1, "host").is_err());
    }

    #[test]
    fn double_dash_passes_the_remainder_through_verbatim() {
        let a = Args::parse(&argv("request 127.0.0.1:4615 beta -- mesh2 64 --trials 2")).unwrap();
        assert_eq!(a.positionals, vec!["127.0.0.1:4615", "beta"]);
        assert_eq!(a.rest, vec!["mesh2", "64", "--trials", "2"]);
        assert!(
            !a.flags.contains_key("trials"),
            "flags after -- must not be parsed"
        );
        // A trailing `--` with nothing after it is legal and empty.
        let a = Args::parse(&argv("request addr ping --")).unwrap();
        assert!(a.rest.is_empty());
        // No `--` at all leaves rest empty.
        let a = Args::parse(&argv("beta mesh2 64")).unwrap();
        assert!(a.rest.is_empty());
    }

    #[test]
    fn boolean_then_positional_disambiguation() {
        // `--steady` followed by another flag stays boolean.
        let a = Args::parse(&argv("beta mesh2 --steady --trials 2")).unwrap();
        assert!(a.has("steady"));
        assert_eq!(a.flag::<usize>("trials", 0).unwrap(), 2);
    }
}
