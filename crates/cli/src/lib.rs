#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-cli
//!
//! Library backing the `fcnemu` command-line tool: a tiny hand-rolled
//! argument parser (no external dependency needed for a fixed flag
//! grammar) and the subcommand implementations, kept in the library so
//! they are unit-testable.

pub mod args;
pub mod commands;
pub mod service;

pub use args::{Args, ParseError};
pub use commands::CmdError;

/// Entry point shared by `main` and tests: parse and dispatch, returning
/// the process exit code and writing the report to `out`.
///
/// Every subcommand accepts `--metrics-out <path>`: the global
/// [`fcn_telemetry`] registry is enabled for the duration of the run and a
/// versioned JSONL *delta* snapshot (only what this run contributed) is
/// written to `path` on success. The report written to `out` stays
/// byte-identical with or without the flag — telemetry never changes a
/// simulated bit; the only extra output is a notice on stderr.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n");
            let _ = writeln!(out, "{}", commands::usage());
            return 2;
        }
    };
    // Baseline *before* enabling, so concurrent in-process runs (tests) and
    // repeated runs against the long-lived global registry report only
    // their own contribution.
    let metrics_out = args.flags.get("metrics-out").cloned();
    let baseline = metrics_out.as_ref().map(|_| {
        let reg = fcn_telemetry::global();
        let base = reg.snapshot();
        reg.set_enabled(true);
        base
    });
    // Typed failures map to exit codes: domain errors (unknown family,
    // failed verification) exit 1, I/O and schema errors exit 2 — the same
    // convention `perfbench` uses for snapshot validation.
    let code = match commands::dispatch(&args, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            e.exit_code()
        }
    };
    if let (Some(path), Some(base)) = (metrics_out, baseline) {
        let reg = fcn_telemetry::global();
        fcn_telemetry::flush_thread_shard(reg);
        reg.set_enabled(false);
        let delta = reg.snapshot().delta_since(&base);
        match std::fs::write(&path, delta.to_jsonl()) {
            Ok(()) => eprintln!("metrics snapshot written to {path}"),
            Err(e) => {
                // I/O failure writing the snapshot: exit 2, like every
                // other metrics I/O error.
                let _ = writeln!(out, "error: cannot write metrics to {path:?}: {e}");
                return 2;
            }
        }
    }
    code
}
