//! # fcn-cli
//!
//! Library backing the `fcnemu` command-line tool: a tiny hand-rolled
//! argument parser (no external dependency needed for a fixed flag
//! grammar) and the subcommand implementations, kept in the library so
//! they are unit-testable.

pub mod args;
pub mod commands;

pub use args::{Args, ParseError};

/// Entry point shared by `main` and tests: parse and dispatch, returning
/// the process exit code and writing the report to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n");
            let _ = writeln!(out, "{}", commands::usage());
            return 2;
        }
    };
    match commands::dispatch(&args, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}
