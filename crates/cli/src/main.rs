//! `fcnemu` — command-line interface to the reproduction toolkit.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    let code = fcn_cli::run(&argv, &mut stdout);
    std::process::exit(code);
}
