//! Service mode: `fcnemu serve` and `fcnemu request`.
//!
//! The daemon side plugs the existing subcommand bodies into
//! [`fcn_serve::Server`] via [`CliHandler`], which is what makes a served
//! response byte-identical to the inline invocation: `audit` and `faults`
//! requests literally run [`crate::run`] into a buffer, and `beta` runs the
//! same body through [`crate::commands::beta_with`] with the daemon's warm
//! registry and the request's deadline flag threaded in.

use std::io::Write;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use fcn_serve::{
    ChaosRates, ChaosSpec, Client, Handler, HandlerOutcome, Registry, Request, RetryPolicy, Server,
    ServerConfig,
};

use crate::args::{Args, ParseError};
use crate::commands::{self, CmdError};

type CmdResult = Result<(), CmdError>;

/// Executes daemon request kinds by dispatching into the inline subcommand
/// bodies, sharing one warm [`Registry`] across all requests. Public so
/// load generators (`fcn-serve-load`) can run an in-process daemon with
/// the exact production handler.
pub struct CliHandler {
    registry: Arc<Registry>,
}

impl Default for CliHandler {
    fn default() -> CliHandler {
        CliHandler::new()
    }
}

impl CliHandler {
    /// A handler with a fresh (cold) registry.
    pub fn new() -> CliHandler {
        CliHandler {
            registry: Arc::new(Registry::new()),
        }
    }

    /// `beta` goes through [`commands::beta_with`] so the warm registry and
    /// the cancel flag reach the estimator; the error-path bytes mirror
    /// [`crate::run`] exactly.
    fn handle_beta(&self, req_args: &[String], cancel: &AtomicBool) -> HandlerOutcome {
        let mut argv = vec!["beta".to_string()];
        argv.extend(req_args.iter().cloned());
        let mut buf = Vec::new();
        let args = match Args::parse(&argv) {
            Ok(args) => args,
            Err(e) => {
                // Byte-for-byte what crate::run writes on a parse failure.
                let _ = writeln!(buf, "error: {e}\n");
                let _ = writeln!(buf, "{}", commands::usage());
                return HandlerOutcome::Done {
                    exit_code: 2,
                    output: buf,
                };
            }
        };
        let result = match commands::beta_with(&args, &mut buf, Some(&self.registry), Some(cancel))
        {
            Ok(r) => r,
            // dispatch() wraps in-command parse errors as domain errors;
            // mirror that so the framed bytes match the inline run.
            Err(parse_err) => Err(CmdError::Run(parse_err.to_string())),
        };
        match result {
            Ok(()) => HandlerOutcome::Done {
                exit_code: 0,
                output: buf,
            },
            Err(CmdError::Cancelled(partial)) => HandlerOutcome::Cancelled { partial },
            Err(e) => {
                let _ = writeln!(buf, "error: {e}");
                HandlerOutcome::Done {
                    exit_code: e.exit_code(),
                    output: buf,
                }
            }
        }
    }
}

impl Handler for CliHandler {
    fn handle(&self, kind: &str, req_args: &[String], cancel: &AtomicBool) -> HandlerOutcome {
        match kind {
            "beta" => self.handle_beta(req_args, cancel),
            // These kinds have no warm-state or cancellation hooks yet, so
            // the whole inline entry point runs into the reply buffer —
            // byte-identity (including error text and exit codes) is then
            // true by construction, not by imitation.
            "audit" | "faults" => {
                let mut argv = vec![kind.to_string()];
                argv.extend(req_args.iter().cloned());
                let mut buf = Vec::new();
                let exit_code = crate::run(&argv, &mut buf);
                HandlerOutcome::Done {
                    exit_code,
                    output: buf,
                }
            }
            other => HandlerOutcome::Failed {
                kind: fcn_serve::ErrorKind::BadRequest,
                message: format!(
                    "unsupported request kind {other:?} (expected beta, audit, faults, metrics, health, or ping)"
                ),
            },
        }
    }
}

/// `fcnemu serve`: bind, announce the resolved address, then serve until
/// SIGTERM/SIGINT triggers a graceful drain.
pub(crate) fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<CmdResult, ParseError> {
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".into());
    let max_inflight = args.flag("max-inflight", 8usize)?;
    let max_queued = args.flag("max-queued", 16usize)?;
    let queue_wait_ms = args.flag("queue-wait-ms", 250u64)?;
    let default_deadline_ms = args.flag("deadline-ms", 0u64)?;
    let poll_interval_ms = args.flag("poll-ms", 20u64)?;
    let chaos_seed = args.flag("chaos-seed", 0u64)?;
    let chaos_stall_ms = args.flag("chaos-stall-ms", 5u64)?;
    let chaos_rates = args.flags.get("chaos-rates").cloned();
    Ok((|| -> CmdResult {
        // Wire chaos is opt-in: injection happens only when a rates flag
        // names a nonzero rate, and then only through the seeded plan.
        let chaos = match chaos_rates {
            Some(spec) => {
                let rates = ChaosRates::parse(&spec).map_err(CmdError::Run)?;
                (!rates.is_zero()).then(|| {
                    let mut spec = ChaosSpec::new(chaos_seed, rates);
                    spec.max_stall_ms = chaos_stall_ms;
                    spec
                })
            }
            None => None,
        };
        // The routing/bandwidth instrumentation gates on the global
        // registry; the daemon always serves with it enabled so `metrics`
        // requests have per-request counters to render.
        fcn_telemetry::global().set_enabled(true);
        let config = ServerConfig {
            addr: addr.clone(),
            max_inflight,
            max_queued,
            queue_wait_ms,
            default_deadline_ms,
            poll_interval_ms,
            chaos,
        };
        let server = Server::bind(config, CliHandler::new())
            .map_err(|e| CmdError::Io(format!("cannot bind {addr:?}: {e}")))?;
        let local = server
            .local_addr()
            .map_err(|e| CmdError::Io(format!("cannot resolve bound address: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        for sig in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
            signal_hook::flag::register(sig, Arc::clone(&shutdown))
                .map_err(|e| CmdError::Io(format!("cannot register signal handler: {e}")))?;
        }
        // Announced (and flushed) before serving so scripts can scrape the
        // resolved ephemeral port.
        let _ = writeln!(out, "listening on {local}");
        let _ = out.flush();
        server
            .run(&shutdown)
            .map_err(|e| CmdError::Io(format!("serve loop failed: {e}")))?;
        let _ = writeln!(out, "drained cleanly; goodbye");
        Ok(())
    })())
}

/// `fcnemu request`: one framed request to a running daemon, printing the
/// response output verbatim. Arguments after `--` are forwarded unparsed.
pub(crate) fn cmd_request(args: &Args, out: &mut dyn Write) -> Result<CmdResult, ParseError> {
    let addr = args.pos(0, "addr")?.to_string();
    let kind = args.pos(1, "kind")?.to_string();
    let deadline_ms = args.flag("deadline-ms", 0u64)?;
    let retries = args.flag("retries", 1u32)?;
    let retry_seed = args.flag("retry-seed", 0u64)?;
    Ok((|| -> CmdResult {
        // --retries > 1 opts into the resilient client: reconnect + seeded
        // backoff on transport failures and Overloaded sheds, with
        // idempotency keys so completed-but-lost replies replay exactly.
        let mut client = if retries > 1 {
            Client::connect_retrying(&addr, RetryPolicy::fast(retries, retry_seed))
        } else {
            Client::connect(&addr)
        }
        .map_err(|e| CmdError::Io(format!("cannot connect to {addr:?}: {e}")))?;
        let mut req = Request::new(0, &kind, &[]);
        req.args = args.rest.clone();
        req.deadline_ms = (deadline_ms > 0).then_some(deadline_ms);
        let resp = client
            .request(req)
            .map_err(|e| CmdError::Io(e.to_string()))?;
        let _ = write!(out, "{}", resp.output);
        match resp.error {
            None if resp.exit_code == 0 => Ok(()),
            // The remote body already printed its own `error:` line (it is
            // byte-identical to the inline run); surface only the code.
            None => Err(CmdError::Run(format!(
                "remote command exited {}",
                resp.exit_code
            ))),
            Some(err) => match err.kind {
                fcn_serve::ErrorKind::Cancelled => Err(CmdError::Cancelled(err.message)),
                kind => Err(CmdError::Run(format!("{kind:?}: {}", err.message))),
            },
        }
    })())
}
