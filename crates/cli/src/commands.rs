//! `fcnemu` subcommand implementations.

use std::io::Write;

use fcn_bandwidth::{
    audit_bottleneck_freeness, flux_upper_bound, theorem6_sandwich, BandwidthEstimator,
    DegradedSweep,
};
use fcn_core::{
    build_witness, direct_emulation, fig1_data, generate_table, max_host_size, numeric_host_size,
    slowdown_lower_bound, table1_spec, table2_spec, table3_spec, EmulationConfig, Lemma9Config,
};
use fcn_routing::{saturation_throughput, Backend, RouterConfig, SteadyConfig};
use fcn_topology::{Family, Machine};

use crate::args::{Args, ParseError};

type Out<'a> = &'a mut dyn Write;

/// A typed command failure, mapped to the process exit code: `Run` is a
/// domain error (exit 1 — unknown family, failed verification), `Io` is an
/// I/O or schema error (exit 2 — unreadable snapshot, invalid metrics
/// file), matching `perfbench`'s validation conventions.
#[derive(Debug)]
pub enum CmdError {
    /// Domain failure; exit code 1.
    Run(String),
    /// I/O or schema failure; exit code 2.
    Io(String),
    /// A deadline cancelled the run mid-flight; the message carries partial
    /// accounting of the work completed. Only service-mode runs (which
    /// thread a cancel flag into the router grid) can produce this; exit
    /// code 1 like other domain-level aborts.
    Cancelled(String),
}

impl CmdError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CmdError::Run(_) | CmdError::Cancelled(_) => 1,
            CmdError::Io(_) => 2,
        }
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Run(m) | CmdError::Io(m) | CmdError::Cancelled(m) => write!(f, "{m}"),
        }
    }
}

impl From<String> for CmdError {
    fn from(m: String) -> Self {
        CmdError::Run(m)
    }
}

impl From<&str> for CmdError {
    fn from(m: &str) -> Self {
        CmdError::Run(m.to_string())
    }
}

type CmdResult = Result<(), CmdError>;

/// Usage text.
pub fn usage() -> String {
    "fcnemu — fixed-connection network emulation-bounds toolkit

USAGE:
  fcnemu machines
  fcnemu build   <family> <size> [--seed N] [--format summary|dot|edges|json]
  fcnemu beta    <family> <size> [--trials N] [--steady] [--seed N] [--jobs N] [--shards N] [--backend tick|events] [--max-ticks N] [--verbose]
  fcnemu faults  <family> <size> [--rates R1,R2,..] [--trials N] [--seed N] [--fault-seed N] [--jobs N] [--shards N] [--backend tick|events] [--quick] [--verbose]
  fcnemu bound   <guest-family> <host-family> [--n N] [--m M]
  fcnemu emulate <guest-family> <n> <host-family> <m> [--steps N]
  fcnemu audit   <family> <size> [--seed N] [--jobs N] [--shards N] [--backend tick|events]
  fcnemu witness <family> <size> [--alpha X]
  fcnemu verify  <family> <size> [--hosts M] [--steps N]
  fcnemu table   <1|2|3> [--size N]
  fcnemu fig1    <guest-family> <host-family> [--n N]
  fcnemu metrics <snapshot.jsonl> [--format table|prom|jsonl]
  fcnemu serve   [--addr H:P] [--max-inflight N] [--max-queued N] [--queue-wait-ms N] [--deadline-ms N] [--poll-ms N] [--chaos-seed N] [--chaos-rates R|Rr,Rs,Rt,Rc] [--chaos-stall-ms N]
  fcnemu request <addr> <kind> [--deadline-ms N] [--retries N] [--retry-seed N] [-- <forwarded args>]
  fcnemu help

Every subcommand also accepts --metrics-out <path>: run with telemetry
enabled and write a versioned JSONL metrics snapshot to <path> (the
report itself is byte-identical with or without the flag).

Families: linear_array ring global_bus tree weak_ppn xtree mesh{1,2,3}
torus{1,2,3} xgrid{1,2,3} mesh_of_trees{1,2,3} multigrid{1,2,3}
pyramid{1,2,3} butterfly ccc shuffle_exchange de_bruijn multibutterfly
expander weak_hypercube"
        .to_string()
}

fn family(id: &str) -> Result<Family, String> {
    Family::all_with_dims(&[1, 2, 3])
        .into_iter()
        .find(|f| f.id() == id)
        .ok_or_else(|| format!("unknown family {id:?} (try `fcnemu machines`)"))
}

fn build(id: &str, size: usize, seed: u64) -> Result<Machine, String> {
    Ok(family(id)?.build_near(size, seed))
}

/// Parse `--backend tick|events` (default `tick`) and reject combining the
/// single-shard event engine with `--shards N > 1` — a silent precedence
/// pick would surprise; the flags genuinely conflict.
fn backend_flag(args: &Args, shards: usize) -> Result<Backend, CmdError> {
    let s = args
        .flags
        .get("backend")
        .cloned()
        .unwrap_or_else(|| "tick".into());
    let b = Backend::parse(&s)
        .ok_or_else(|| CmdError::Run(format!("--backend: expected tick or events, got {s:?}")))?;
    if b == Backend::Events && shards > 1 {
        return Err(CmdError::Run(
            "--backend events runs the single-shard event engine; drop --shards".into(),
        ));
    }
    Ok(b)
}

/// Dispatch a parsed command.
pub fn dispatch(args: &Args, out: Out) -> CmdResult {
    let r: Result<CmdResult, ParseError> = (|| {
        Ok(match args.command.as_str() {
            "machines" => cmd_machines(out),
            "build" => cmd_build(args, out)?,
            "beta" => cmd_beta(args, out)?,
            "faults" => cmd_faults(args, out)?,
            "bound" => cmd_bound(args, out)?,
            "emulate" => cmd_emulate(args, out)?,
            "audit" => cmd_audit(args, out)?,
            "witness" => cmd_witness(args, out)?,
            "verify" => cmd_verify(args, out)?,
            "table" => cmd_table(args, out)?,
            "fig1" => cmd_fig1(args, out)?,
            "metrics" => cmd_metrics(args, out)?,
            "serve" => crate::service::cmd_serve(args, out)?,
            "request" => crate::service::cmd_request(args, out)?,
            "help" | "--help" | "-h" => {
                let _ = writeln!(out, "{}", usage());
                Ok(())
            }
            other => Err(format!("unknown command {other:?}\n\n{}", usage()).into()),
        })
    })();
    r.map_err(|e| CmdError::Run(e.to_string()))?
}

fn cmd_machines(out: Out) -> CmdResult {
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>10} {:>14}",
        "family", "β(n)", "λ(n)", "fixed degree"
    );
    for f in Family::all_with_dims(&[1, 2, 3]) {
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>10} {:>14}",
            f.id(),
            f.beta().theta_string(),
            f.lambda().theta_string(),
            f.fixed_degree()
        );
    }
    Ok(())
}

fn cmd_build(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let id = args.pos(0, "family")?.to_string();
    let size: usize = args
        .pos(1, "size")?
        .parse()
        .map_err(|_| ParseError("size must be a positive integer".into()))?;
    let seed = args.flag("seed", 0u64)?;
    let format = args
        .flags
        .get("format")
        .cloned()
        .unwrap_or_else(|| "summary".into());
    Ok((|| -> CmdResult {
        let m = build(&id, size, seed)?;
        match format.as_str() {
            "summary" => {
                let _ = writeln!(out, "machine   : {}", m.name());
                let _ = writeln!(out, "processors: {}", m.processors());
                let _ = writeln!(out, "nodes     : {}", m.node_count());
                let _ = writeln!(out, "edges E(G): {}", m.graph().simple_edge_count());
                let _ = writeln!(out, "max degree: {}", m.graph().max_degree());
                let _ = writeln!(out, "β (Θ)     : {}", m.beta_analytic().theta_string());
                let _ = writeln!(out, "λ (Θ)     : {}", m.lambda_analytic().theta_string());
                let _ = writeln!(out, "routing   : {:?}", m.route_policy());
            }
            "dot" => {
                let _ = writeln!(out, "{}", fcn_topology::to_labeled_dot(&m));
            }
            "edges" => {
                let _ = write!(out, "{}", fcn_multigraph::to_edge_list(m.graph()));
            }
            "json" => {
                let _ = writeln!(out, "{}", fcn_multigraph::to_json(m.graph()));
            }
            other => return Err(format!("unknown format {other:?}").into()),
        }
        Ok(())
    })())
}

fn cmd_beta(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    beta_with(args, out, None, None)
}

/// The `beta` body, parameterized for service mode. Inline `fcnemu beta`
/// is `beta_with(args, out, None, None)`; the daemon passes its warm
/// [`fcn_serve::Registry`] (compiled net + plan cache reused across
/// requests — both bit-transparent to the estimate) and the request's
/// deadline flag. Non-verbose output is byte-identical across all four
/// combinations, which is the differential harness's pin.
pub(crate) fn beta_with(
    args: &Args,
    out: Out,
    warm: Option<&fcn_serve::Registry>,
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> Result<CmdResult, ParseError> {
    let id = args.pos(0, "family")?.to_string();
    let size: usize = args
        .pos(1, "size")?
        .parse()
        .map_err(|_| ParseError("size must be a positive integer".into()))?;
    let trials = args.flag("trials", 3usize)?;
    let seed = args.flag("seed", 0xbeadu64)?;
    // Worker threads for the trials×multipliers grid; 0 = one per hardware
    // thread. The estimate is bit-identical for every value.
    let jobs = args.flag("jobs", 1usize)?;
    // Router shard count per cell; 1 is the sequential engine. Like --jobs,
    // bit-identical for every value.
    let shards = args.flag("shards", 1usize)?;
    // Router tick budget; 0 keeps the default. Cells that exhaust it are
    // reported (under --verbose) instead of silently depressing the plateau.
    let max_ticks = args.flag("max-ticks", 0u64)?;
    let steady = args.has("steady");
    let verbose = args.has("verbose");
    Ok((|| -> CmdResult {
        // Router backend per grid cell; bit-identical either way.
        let backend = backend_flag(args, shards)?;
        let m = build(&id, size, seed)?;
        let t = m.symmetric_traffic();
        let mut router = RouterConfig::default();
        if max_ticks > 0 {
            router.max_ticks = max_ticks;
        }
        let est = BandwidthEstimator {
            trials,
            seed,
            jobs,
            shards,
            backend,
            router,
            ..Default::default()
        };
        // Caller-owned plan cache so --verbose can report its effectiveness;
        // the cache is bit-transparent to the estimate. In service mode the
        // net and cache come warm out of the daemon's registry instead of
        // being compiled per invocation.
        let (net, cache) = match warm {
            Some(registry) => {
                let (entry, _hit) = registry.get_or_compile(&m);
                (entry.net, entry.cache)
            }
            None => (
                fcn_routing::CompiledNet::shared(&m),
                std::sync::Arc::new(fcn_routing::PlanCache::default()),
            ),
        };
        let b = est
            .try_estimate_compiled(&m, &net, &t, &cache, cancel)
            .map_err(|aborted| {
                if aborted.cancelled {
                    CmdError::Cancelled(aborted.to_string())
                } else {
                    CmdError::Run(aborted.to_string())
                }
            })?;
        let flux = flux_upper_bound(&m, &t, seed, 4, 2);
        let _ = writeln!(out, "machine       : {} (n = {})", m.name(), m.processors());
        let _ = writeln!(
            out,
            "measured β̂    : {:.3} (mean {:.3})",
            b.rate, b.mean_rate
        );
        let _ = writeln!(
            out,
            "flux bound    : {:.3} [{}]",
            flux.rate_bound, flux.witness
        );
        let _ = writeln!(
            out,
            "analytic Θ    : {} -> {:.3} at this size",
            m.beta_analytic().theta_string(),
            m.beta_at_size()
        );
        if steady {
            let (sat, _) = saturation_throughput(&m, &t, SteadyConfig::default());
            let _ = writeln!(out, "steady-state  : {sat:.3}");
        }
        // Surface the cache counters to `--metrics-out` snapshots (no-op
        // when telemetry is disabled).
        cache.publish();
        if verbose {
            let _ = writeln!(
                out,
                "plan cache    : {} hits / {} misses ({:.1}% hit rate, {} trees)",
                cache.hits(),
                cache.misses(),
                100.0 * cache.hit_rate(),
                cache.entries()
            );
            let _ = writeln!(
                out,
                "trials        : {}/{} complete ({} samples)",
                b.complete_trials,
                trials,
                b.samples.len()
            );
            // Typed-abort accounting: cells that hit the tick budget are a
            // measurement hazard (they depress the plateau), so surface them
            // loudly. Printed only when non-zero, keeping the byte pin on
            // fault-free runs.
            let aborted = b.samples.iter().filter(|s| !s.completed).count();
            if aborted > 0 {
                let _ = writeln!(
                    out,
                    "WARNING       : {aborted}/{} cells hit the tick budget \
                     (max-ticks {}); raise --max-ticks",
                    b.samples.len(),
                    router.max_ticks
                );
            }
        }
        Ok(())
    })())
}

/// `fcnemu faults`: the β-vs-fault-rate curve for one machine — the intact
/// estimator re-run against a deterministic fault plane at each rate.
fn cmd_faults(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let id = args.pos(0, "family")?.to_string();
    let size: usize = args
        .pos(1, "size")?
        .parse()
        .map_err(|_| ParseError("size must be a positive integer".into()))?;
    let trials = args.flag("trials", 3usize)?;
    let seed = args.flag("seed", 0xbeadu64)?;
    let fault_seed = args.flag("fault-seed", 0xfa17u64)?;
    let jobs = args.flag("jobs", 1usize)?;
    let shards = args.flag("shards", 1usize)?;
    let quick = args.has("quick");
    let verbose = args.has("verbose");
    let rates_flag = args.flags.get("rates").cloned();
    Ok((|| -> CmdResult {
        let fault_rates: Vec<f64> = match rates_flag {
            Some(s) => s
                .split(',')
                .map(|r| {
                    r.trim()
                        .parse::<f64>()
                        .map_err(|_| CmdError::Run(format!("--rates: {r:?} is not a number")))
                })
                .collect::<Result<_, _>>()?,
            None if quick => vec![0.0, 0.05, 0.10],
            None => vec![0.0, 0.02, 0.05, 0.10, 0.20],
        };
        if fault_rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err(format!("--rates: rates must lie in [0, 1], got {fault_rates:?}").into());
        }
        let backend = backend_flag(args, shards)?;
        let m = build(&id, size, seed)?;
        let sweep = DegradedSweep {
            fault_rates,
            fault_seed,
            multipliers: if quick { vec![2, 4] } else { vec![2, 4, 8] },
            trials: if quick { trials.min(2) } else { trials },
            seed,
            jobs,
            shards,
            backend,
            ..Default::default()
        };
        // Under `--verbose --backend events`, run the sweep with telemetry
        // collecting so the event engine's skip counters can be reported
        // (telemetry is bit-transparent, so the curve itself is unchanged).
        // The registry's prior enabled state is restored, and the counters
        // are read as a delta, so a surrounding `--metrics-out` run still
        // reports exactly its own contribution.
        let event_stats = verbose && backend == Backend::Events;
        let (points, skip_stats) = if event_stats {
            let reg = fcn_telemetry::global();
            let was_enabled = reg.enabled();
            let base = reg.snapshot();
            reg.set_enabled(true);
            let points = sweep.sweep_symmetric(&m);
            fcn_telemetry::flush_thread_shard(reg);
            reg.set_enabled(was_enabled);
            let delta = reg.snapshot().delta_since(&base);
            let get = |name: &str| delta.counters.get(name).copied().unwrap_or(0);
            (
                points,
                Some((
                    get(fcn_telemetry::names::ROUTER_TICKS_SKIPPED_TOTAL),
                    get(fcn_telemetry::names::ROUTER_OUTAGE_WINDOWS_SKIPPED_TOTAL),
                )),
            )
        } else {
            (sweep.sweep_symmetric(&m), None)
        };
        let _ = writeln!(out, "machine    : {} (n = {})", m.name(), m.processors());
        let _ = writeln!(
            out,
            "fault seed : {:#x} ({} trials x {} batch sizes per rate)",
            fault_seed,
            sweep.trials,
            sweep.multipliers.len()
        );
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>7} {:>8} {:>7} {:>7} {:>6}",
            "rate",
            "β̂",
            "mean",
            "deliver",
            "dead-n",
            "dead-l",
            "outages",
            "strand",
            "unreach",
            "replan",
            "abort"
        );
        for p in &points {
            let _ = writeln!(
                out,
                "{:>6.3} {:>8.3} {:>8.3} {:>7.1}% {:>6} {:>6} {:>7} {:>8} {:>7} {:>7} {:>6}",
                p.fault_rate,
                p.rate,
                p.mean_rate,
                100.0 * p.delivery_fraction(),
                p.dead_nodes,
                p.dead_links,
                p.outages,
                p.stranded,
                p.unreachable,
                p.replans,
                p.aborted_cells
            );
        }
        if verbose {
            // The event engine's skip accounting: how many quiescent ticks
            // were jumped over, and how many outage windows opened *and*
            // closed inside jumps — windows no simulated tick ever touched.
            if let Some((ticks_skipped, windows_skipped)) = skip_stats {
                let _ = writeln!(
                    out,
                    "event backend : {ticks_skipped} quiescent ticks skipped, \
                     {windows_skipped} outage windows skipped entirely"
                );
            }
            for p in &points {
                for (i, s) in p.samples.iter().enumerate() {
                    if !s.sample.completed {
                        let _ = writeln!(
                            out,
                            "WARNING: rate {:.3} cell {i} aborted ({}) after {} ticks",
                            p.fault_rate, s.abort, s.sample.ticks
                        );
                    }
                }
            }
        }
        Ok(())
    })())
}

fn cmd_bound(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let gid = args.pos(0, "guest-family")?.to_string();
    let hid = args.pos(1, "host-family")?.to_string();
    let n = args.flag("n", 1u64 << 20)? as f64;
    let m = args.flag("m", 0u64)?;
    Ok((|| -> CmdResult {
        let guest = family(&gid)?;
        let host = family(&hid)?;
        let bound = slowdown_lower_bound(&guest, &host);
        let _ = writeln!(out, "Efficient Emulation Theorem: S ≥ {bound}");
        let cap = max_host_size(&guest, &host);
        let _ = writeln!(out, "maximum efficient host size: |H| = {}", cap.to_cell());
        let m_star = numeric_host_size(&guest, &host, n);
        let _ = writeln!(out, "numeric crossover at n = {n}: m* ≈ {m_star:.1}");
        if m > 0 {
            let _ = writeln!(
                out,
                "at (n, m) = ({n}, {m}): load ≥ {:.2}, communication ≥ {:.2}, total ≥ {:.2}",
                bound.load(n, m as f64),
                bound.communication(n, m as f64),
                bound.eval(n, m as f64)
            );
        }
        Ok(())
    })())
}

fn cmd_emulate(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let gid = args.pos(0, "guest-family")?.to_string();
    let n: usize = args
        .pos(1, "n")?
        .parse()
        .map_err(|_| ParseError("n must be a positive integer".into()))?;
    let hid = args.pos(2, "host-family")?.to_string();
    let m: usize = args
        .pos(3, "m")?
        .parse()
        .map_err(|_| ParseError("m must be a positive integer".into()))?;
    let steps = args.flag("steps", 8u64)?;
    Ok((|| -> CmdResult {
        let guest = build(&gid, n, 0xa)?;
        let host = build(&hid, m, 0xb)?;
        if guest.processors() < host.processors() {
            return Err("guest must be at least as large as host".into());
        }
        let report = direct_emulation(&guest, &host, steps, &EmulationConfig::default());
        let bound = slowdown_lower_bound(&guest.family(), &host.family());
        let predicted = bound.eval(guest.processors() as f64, host.processors() as f64);
        let _ = writeln!(
            out,
            "emulating {} (n = {}) on {} (m = {}) for {} steps",
            guest.name(),
            guest.processors(),
            host.name(),
            host.processors(),
            steps
        );
        let _ = writeln!(out, "max load          : {}", report.max_load);
        let _ = writeln!(
            out,
            "compute / step    : {:.1}",
            report.compute_ticks as f64 / steps as f64
        );
        let _ = writeln!(
            out,
            "communication/step: {:.1}",
            report.communication_slowdown()
        );
        let _ = writeln!(out, "measured slowdown : {:.1}", report.slowdown());
        let _ = writeln!(out, "theorem bound     : {predicted:.1}");
        Ok(())
    })())
}

fn cmd_audit(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let id = args.pos(0, "family")?.to_string();
    let size: usize = args
        .pos(1, "size")?
        .parse()
        .map_err(|_| ParseError("size must be a positive integer".into()))?;
    let seed = args.flag("seed", 7u64)?;
    let jobs = args.flag("jobs", 1usize)?;
    let shards = args.flag("shards", 1usize)?;
    Ok((|| -> CmdResult {
        let backend = backend_flag(args, shards)?;
        let m = build(&id, size, seed)?;
        // Same cheap estimator as `quick_audit`, with the worker, shard,
        // and backend choices threaded through: the audit cells run in
        // parallel, the output is bit-identical for every `--jobs`,
        // `--shards`, and `--backend` value.
        let est = BandwidthEstimator {
            multipliers: vec![2, 4],
            trials: 2,
            seed,
            jobs,
            shards,
            backend,
            ..Default::default()
        };
        let audit = audit_bottleneck_freeness(&m, &est, seed);
        let _ = writeln!(out, "machine        : {}", m.name());
        let _ = writeln!(out, "symmetric rate : {:.3}", audit.symmetric_rate);
        for (label, rate) in &audit.quasi_rates {
            let _ = writeln!(out, "  {label:<26}: {rate:.3}");
        }
        let _ = writeln!(
            out,
            "worst ratio    : {:.3} -> {}",
            audit.worst_ratio,
            if audit.is_bottleneck_free(4.0) {
                "bottleneck-free (c <= 4)"
            } else {
                "SUSPECT"
            }
        );
        // Theorem 6 certificate as a bonus consistency check.
        let cert = theorem6_sandwich(&m, 4, seed);
        let _ = writeln!(
            out,
            "β sandwich     : embedding ≥ {:.2} | measured {:.2} | flux ≤ {:.2}",
            cert.embedding_lower, cert.measured, cert.flux_upper
        );
        Ok(())
    })())
}

fn cmd_witness(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let id = args.pos(0, "family")?.to_string();
    let size: usize = args
        .pos(1, "size")?
        .parse()
        .map_err(|_| ParseError("size must be a positive integer".into()))?;
    let alpha = args.flag("alpha", 1.0f64)?;
    Ok((|| -> CmdResult {
        let m = build(&id, size, 3)?;
        let w = build_witness(m.graph(), Lemma9Config { alpha, seed: 0x9e });
        let _ = writeln!(out, "guest           : {} (n = {})", m.name(), w.n);
        let _ = writeln!(
            out,
            "Λ / t / cutoff  : {} / {} / {}",
            w.lambda, w.t, w.cutoff
        );
        let _ = writeln!(out, "S-nodes         : {}", w.s_nodes);
        let _ = writeln!(out, "cone paths      : {}", w.cone_paths);
        let _ = writeln!(
            out,
            "γ vertices/edges: {} / {}",
            w.gamma_vertices, w.gamma_edges
        );
        let _ = writeln!(
            out,
            "congestion      : {} (cap {}, ratio {:.3})",
            w.congestion,
            w.congestion_cap,
            w.congestion_ratio()
        );
        let _ = writeln!(
            out,
            "preservation    : {:.3} (β(circuit,γ) / t·β(G))",
            w.preservation_ratio()
        );
        Ok(())
    })())
}

fn cmd_verify(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let id = args.pos(0, "family")?.to_string();
    let size: usize = args
        .pos(1, "size")?
        .parse()
        .map_err(|_| ParseError("size must be a positive integer".into()))?;
    let hosts = args.flag("hosts", 4usize)?;
    let steps = args.flag("steps", 5u32)?;
    Ok((|| -> CmdResult {
        let m = build(&id, size, 3)?;
        let r = fcn_core::verify_direct_emulation(m.graph(), hosts.min(m.processors()), steps, 0xf);
        let _ = writeln!(
            out,
            "direct emulation of {} on {} hosts for {} steps:",
            m.name(),
            r.hosts,
            r.steps
        );
        let _ = writeln!(out, "  values communicated : {}", r.values_communicated);
        let _ = writeln!(
            out,
            "  operations          : {} (work x{:.2})",
            r.operations,
            r.work_ratio()
        );
        let _ = writeln!(
            out,
            "  semantics           : {}",
            if r.matches_reference {
                "EXACT (matches reference run bit-for-bit)"
            } else {
                "DIVERGED"
            }
        );
        if !r.matches_reference {
            return Err("verification failed".into());
        }
        Ok(())
    })())
}

fn cmd_table(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let which = args.pos(0, "table number")?.to_string();
    let size = args.flag("size", 1u64 << 16)?;
    Ok((|| -> CmdResult {
        let spec = match which.as_str() {
            "1" => table1_spec(&[1, 2, 3]),
            "2" => table2_spec(&[1, 2, 3]),
            "3" => table3_spec(&[1, 2, 3]),
            other => return Err(format!("unknown table {other:?} (expected 1, 2 or 3)").into()),
        };
        let table = generate_table(spec, &[size]);
        let _ = write!(out, "{}", table.render());
        Ok(())
    })())
}

fn cmd_fig1(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let gid = args.pos(0, "guest-family")?.to_string();
    let hid = args.pos(1, "host-family")?.to_string();
    let n = args.flag("n", 1u64 << 20)? as f64;
    Ok((|| -> CmdResult {
        let guest = family(&gid)?;
        let host = family(&hid)?;
        let d = fig1_data(&guest, &host, n, 20);
        let _ = writeln!(
            out,
            "guest {gid}, host family {hid}, n = {n}: crossover m* = {:.1}, \
             min slowdown = {:.1}",
            d.crossover_m, d.crossover_slowdown
        );
        let _ = writeln!(out, "{:>12} {:>14} {:>14}", "m", "load n/m", "comm bound");
        for p in &d.points {
            let _ = writeln!(
                out,
                "{:>12.1} {:>14.2} {:>14.2}",
                p.m, p.load_bound, p.comm_bound
            );
        }
        Ok(())
    })())
}

/// Render a previously written `--metrics-out` snapshot.
///
/// The snapshot is validated against the `fcn-telemetry/1` schema on read;
/// `--format prom` emits the Prometheus text exposition, `--format jsonl`
/// re-emits the canonical JSONL, and the default `table` is a human
/// summary (histograms show count / sum / mean).
fn cmd_metrics(args: &Args, out: Out) -> Result<CmdResult, ParseError> {
    let path = args.pos(0, "snapshot.jsonl")?.to_string();
    let format = args
        .flags
        .get("format")
        .cloned()
        .unwrap_or_else(|| "table".into());
    Ok((|| -> CmdResult {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CmdError::Io(format!("cannot read {path:?}: {e}")))?;
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&text)
            .map_err(|e| CmdError::Io(format!("invalid metrics snapshot {path:?}: {e}")))?;
        match format.as_str() {
            "prom" => {
                let _ = write!(out, "{}", snap.to_prometheus());
            }
            "jsonl" => {
                let _ = write!(out, "{}", snap.to_jsonl());
            }
            "table" => {
                let _ = writeln!(out, "{:<40} {:>16}", "counter", "value");
                for (k, v) in &snap.counters {
                    let _ = writeln!(out, "{k:<40} {v:>16}");
                }
                if !snap.gauges.is_empty() {
                    let _ = writeln!(out, "{:<40} {:>16}", "gauge", "value");
                    for (k, v) in &snap.gauges {
                        let _ = writeln!(out, "{k:<40} {v:>16}");
                    }
                }
                if !snap.histograms.is_empty() {
                    let _ = writeln!(
                        out,
                        "{:<40} {:>12} {:>16} {:>10}",
                        "histogram", "count", "sum", "mean"
                    );
                    for (k, h) in &snap.histograms {
                        let mean = h.sum as f64 / h.count.max(1) as f64;
                        let _ = writeln!(out, "{k:<40} {:>12} {:>16} {mean:>10.2}", h.count, h.sum);
                    }
                }
            }
            other => return Err(format!("unknown format {other:?} (table, prom or jsonl)").into()),
        }
        Ok(())
    })())
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn run_s(cmd: &str) -> (i32, String) {
        let argv: Vec<String> = cmd.split_whitespace().map(String::from).collect();
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn machines_lists_all_families() {
        let (code, out) = run_s("machines");
        assert_eq!(code, 0);
        assert!(out.contains("de_bruijn"));
        assert!(out.contains("pyramid3"));
        assert!(out.lines().count() >= 30);
    }

    #[test]
    fn build_summary_and_formats() {
        let (code, out) = run_s("build mesh2 64");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("processors: 64"));
        let (code, dot) = run_s("build tree 15 --format dot");
        assert_eq!(code, 0);
        assert!(dot.contains("graph tree"));
        let (code, edges) = run_s("build ring 8 --format edges");
        assert_eq!(code, 0);
        assert!(edges.starts_with("# nodes 8"));
        let (code, json) = run_s("build ring 8 --format json");
        assert_eq!(code, 0);
        assert!(json.trim_start().starts_with('{'));
    }

    #[test]
    fn bound_prints_the_intro_example() {
        let (code, out) = run_s("bound de_bruijn mesh2 --n 1048576 --m 64");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("O(lg^2 n)"), "{out}");
        assert!(out.contains("m* ≈ 400"), "{out}");
    }

    #[test]
    fn beta_measures() {
        let (code, out) = run_s("beta mesh2 64 --trials 2");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("measured β̂"));
        assert!(out.contains("flux bound"));
    }

    #[test]
    fn beta_verbose_reports_cache_stats() {
        let (code, plain) = run_s("beta mesh2 64 --trials 2");
        assert_eq!(code, 0, "{plain}");
        let (code, verbose) = run_s("beta mesh2 64 --trials 2 --verbose");
        assert_eq!(code, 0, "{verbose}");
        assert!(verbose.contains("plan cache"), "{verbose}");
        assert!(verbose.contains("hit rate"), "{verbose}");
        assert!(verbose.contains("trials"), "{verbose}");
        // --verbose only appends; the measurement lines are unchanged.
        assert!(verbose.starts_with(&plain), "verbose must extend plain");
        // The shared-seed trials actually exercise the cache.
        assert!(!verbose.contains("0 hits"), "{verbose}");
    }

    #[test]
    fn beta_output_is_jobs_invariant() {
        let (code, seq) = run_s("beta mesh2 64 --trials 2 --jobs 1");
        assert_eq!(code, 0, "{seq}");
        let (code, par) = run_s("beta mesh2 64 --trials 2 --jobs 0");
        assert_eq!(code, 0, "{par}");
        assert_eq!(seq, par, "--jobs must not change the output");
    }

    #[test]
    fn audit_output_is_jobs_invariant() {
        let (code, seq) = run_s("audit tree 31 --jobs 1");
        assert_eq!(code, 0, "{seq}");
        let (code, par) = run_s("audit tree 31 --jobs 4");
        assert_eq!(code, 0, "{par}");
        assert_eq!(seq, par, "--jobs must not change the output");
    }

    #[test]
    fn beta_output_is_shards_invariant() {
        let (code, seq) = run_s("beta mesh2 64 --trials 2 --shards 1");
        assert_eq!(code, 0, "{seq}");
        let (code, sh) = run_s("beta mesh2 64 --trials 2 --shards 4");
        assert_eq!(code, 0, "{sh}");
        assert_eq!(seq, sh, "--shards must not change the output");
    }

    #[test]
    fn audit_output_is_shards_invariant() {
        let (code, seq) = run_s("audit tree 31 --shards 1");
        assert_eq!(code, 0, "{seq}");
        let (code, sh) = run_s("audit tree 31 --shards 4");
        assert_eq!(code, 0, "{sh}");
        assert_eq!(seq, sh, "--shards must not change the output");
    }

    #[test]
    fn beta_output_is_backend_invariant() {
        let (code, tick) = run_s("beta mesh2 64 --trials 2 --backend tick");
        assert_eq!(code, 0, "{tick}");
        let (code, events) = run_s("beta mesh2 64 --trials 2 --backend events");
        assert_eq!(code, 0, "{events}");
        assert_eq!(tick, events, "--backend must not change the output");
        let (code, default) = run_s("beta mesh2 64 --trials 2");
        assert_eq!(code, 0, "{default}");
        assert_eq!(tick, default, "tick is the default backend");
    }

    #[test]
    fn audit_output_is_backend_invariant() {
        let (code, tick) = run_s("audit tree 31 --backend tick");
        assert_eq!(code, 0, "{tick}");
        let (code, events) = run_s("audit tree 31 --backend events");
        assert_eq!(code, 0, "{events}");
        assert_eq!(tick, events, "--backend must not change the output");
    }

    #[test]
    fn backend_flag_rejects_bad_values_and_shard_conflicts() {
        let (code, out) = run_s("beta mesh2 64 --backend warp");
        assert_eq!(code, 1);
        assert!(out.contains("expected tick or events"), "{out}");
        let (code, out) = run_s("beta mesh2 64 --backend events --shards 4");
        assert_eq!(code, 1);
        assert!(out.contains("single-shard"), "{out}");
        let (code, out) = run_s("faults mesh2 64 --quick --backend events --shards 2");
        assert_eq!(code, 1);
        assert!(out.contains("single-shard"), "{out}");
        // Tick + shards stays legal.
        let (code, out) = run_s("audit tree 31 --backend tick --shards 2");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn emulate_reports_slowdown() {
        let (code, out) = run_s("emulate de_bruijn 64 mesh2 9 --steps 4");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("measured slowdown"));
        assert!(out.contains("theorem bound"));
    }

    #[test]
    fn witness_reports_lemma9() {
        let (code, out) = run_s("witness mesh2 25");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("preservation"));
    }

    #[test]
    fn table_renders() {
        let (code, out) = run_s("table 3");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("de_bruijn"));
        assert!(out.contains("O(lg^2 n)") || out.contains("O(lg n)"));
    }

    #[test]
    fn errors_are_reported() {
        let (code, out) = run_s("beta nosuch 64");
        assert_eq!(code, 1);
        assert!(out.contains("unknown family"));
        let (code, out) = run_s("frobnicate");
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
        let (code, _) = run_s("build mesh2");
        assert_eq!(code, 1);
    }

    #[test]
    fn verify_reports_exact_semantics() {
        let (code, out) = run_s("verify de_bruijn 32 --hosts 4 --steps 4");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("EXACT"));
    }

    #[test]
    fn help_exits_zero() {
        let (code, out) = run_s("help");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    /// Serializes the tests that enable the global telemetry registry, so
    /// their delta snapshots don't absorb each other's metrics.
    static METRICS_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn metrics_out_writes_valid_snapshot_and_keeps_stdout_stable() {
        let _gate = METRICS_GATE.lock().unwrap();
        let dir = std::env::temp_dir().join("fcnemu_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("beta.jsonl");
        let path_s = path.to_str().unwrap();

        let (code, plain) = run_s("beta mesh2 64 --trials 2");
        assert_eq!(code, 0, "{plain}");
        let (code, with_metrics) =
            run_s(&format!("beta mesh2 64 --trials 2 --metrics-out {path_s}"));
        assert_eq!(code, 0, "{with_metrics}");
        // Telemetry must not change a byte of the report.
        assert_eq!(plain, with_metrics, "--metrics-out changed stdout");

        // The snapshot parses, validates against the schema, and contains
        // the expected instrument families.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with("{\"schema\":\"fcn-telemetry/1\""),
            "{text}"
        );
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&text).expect("snapshot validates");
        assert!(snap.counters.contains_key("router_runs_total"), "{text}");
        assert!(snap.counters.contains_key("router_ticks_total"));
        assert!(snap.counters.contains_key("plan_cache_hits_total"));
        assert!(snap.counters.contains_key("bandwidth_trials_total"));
        assert!(snap.counters.contains_key("exec_jobs_total"));
        assert!(snap
            .counters
            .contains_key("span_bandwidth_estimate_calls_total"));
        assert!(snap.histograms.contains_key("router_queue_occupancy"));
        assert!(snap.gauges.contains_key("plan_cache_entries"));
        // Router accounting is self-consistent.
        assert!(snap.counters["router_delivered_total"] <= snap.counters["router_packets_total"]);
        let occ = &snap.histograms["router_queue_occupancy"];
        assert_eq!(occ.count, snap.counters["router_ticks_total"]);
    }

    #[test]
    fn metrics_subcommand_renders_prom_and_table() {
        let _gate = METRICS_GATE.lock().unwrap();
        let dir = std::env::temp_dir().join("fcnemu_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        let path_s = path.to_str().unwrap();

        let (code, out) = run_s(&format!("audit tree 31 --metrics-out {path_s}"));
        assert_eq!(code, 0, "{out}");

        let (code, prom) = run_s(&format!("metrics {path_s} --format prom"));
        assert_eq!(code, 0, "{prom}");
        assert!(prom.contains("# TYPE router_ticks_total counter"), "{prom}");
        assert!(
            prom.contains("router_queue_occupancy_bucket{le=\"+Inf\"}"),
            "{prom}"
        );
        assert!(prom.contains("router_queue_occupancy_count"), "{prom}");

        let (code, table) = run_s(&format!("metrics {path_s}"));
        assert_eq!(code, 0, "{table}");
        assert!(table.contains("router_runs_total"), "{table}");

        // Round trip: `--format jsonl` re-emits the canonical bytes.
        let (code, jsonl) = run_s(&format!("metrics {path_s} --format jsonl"));
        assert_eq!(code, 0);
        assert_eq!(jsonl, std::fs::read_to_string(&path).unwrap());
    }

    #[test]
    fn metrics_subcommand_rejects_invalid_snapshots() {
        let dir = std::env::temp_dir().join("fcnemu_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(
            &bad,
            "{\"schema\":\"fcn-telemetry/9\",\"kind\":\"header\",\"counters\":0,\"gauges\":0,\"histograms\":0}\n",
        )
        .unwrap();
        let (code, out) = run_s(&format!("metrics {} --format prom", bad.to_str().unwrap()));
        assert_eq!(code, 2, "schema errors are I/O-class failures: {out}");
        assert!(out.contains("schema"), "{out}");
        let (code, out) = run_s("metrics /no/such/file.jsonl");
        assert_eq!(code, 2, "unreadable snapshots exit 2: {out}");
        assert!(out.contains("cannot read"), "{out}");
    }

    #[test]
    fn metrics_out_write_failure_exits_two() {
        let _gate = METRICS_GATE.lock().unwrap();
        let (code, out) = run_s("machines --metrics-out /no/such/dir/metrics.jsonl");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("cannot write metrics"), "{out}");
    }

    #[test]
    fn faults_renders_a_curve_and_is_jobs_invariant() {
        let (code, seq) = run_s("faults mesh2 64 --quick --jobs 1");
        assert_eq!(code, 0, "{seq}");
        assert!(seq.contains("fault seed"), "{seq}");
        assert!(seq.contains(" 0.000"), "{seq}");
        assert!(seq.contains(" 0.100"), "{seq}");
        let (code, par) = run_s("faults mesh2 64 --quick --jobs 4");
        assert_eq!(code, 0, "{par}");
        assert_eq!(seq, par, "--jobs must not change the faults output");
    }

    #[test]
    fn faults_output_is_shards_invariant() {
        // Sharded routing on faulted nets (dead wires, outage windows) is
        // still byte-identical, all the way out to the rendered curve.
        let (code, seq) = run_s("faults mesh2 64 --quick --shards 1");
        assert_eq!(code, 0, "{seq}");
        let (code, sh) = run_s("faults mesh2 64 --quick --shards 4");
        assert_eq!(code, 0, "{sh}");
        assert_eq!(seq, sh, "--shards must not change the faults output");
    }

    #[test]
    fn faults_output_is_backend_invariant() {
        let (code, tick) = run_s("faults mesh2 64 --quick --backend tick");
        assert_eq!(code, 0, "{tick}");
        let (code, events) = run_s("faults mesh2 64 --quick --backend events");
        assert_eq!(code, 0, "{events}");
        assert_eq!(tick, events, "--backend must not change the faults output");
    }

    #[test]
    fn faults_verbose_events_reports_skipped_windows() {
        // `--verbose --backend events` toggles the global registry to read
        // the skip counters, so serialize with the other metrics tests.
        let _gate = METRICS_GATE.lock().unwrap();
        let (code, plain) = run_s("faults mesh2 64 --quick --backend events");
        assert_eq!(code, 0, "{plain}");
        let (code, verbose) = run_s("faults mesh2 64 --quick --verbose --backend events");
        assert_eq!(code, 0, "{verbose}");
        assert!(
            verbose.contains("outage windows skipped entirely"),
            "{verbose}"
        );
        assert!(verbose.contains("quiescent ticks skipped"), "{verbose}");
        // The verbose skip accounting only appends lines; the curve itself
        // is byte-identical (telemetry is a read-only lens).
        for line in plain.lines() {
            assert!(verbose.contains(line), "verbose lost line {line:?}");
        }
        // The tick backend has nothing to skip and prints no such line.
        let (code, tick_verbose) = run_s("faults mesh2 64 --quick --verbose --backend tick");
        assert_eq!(code, 0, "{tick_verbose}");
        assert!(
            !tick_verbose.contains("quiescent ticks skipped"),
            "{tick_verbose}"
        );
    }

    #[test]
    fn faults_zero_rate_row_matches_intact_beta() {
        // The rate-0 row of the curve is the intact estimator bit-for-bit:
        // its β̂ must equal what `beta` prints for the same seed/trials.
        let (code, beta) = run_s("beta mesh2 64 --trials 2");
        assert_eq!(code, 0, "{beta}");
        let measured = beta
            .lines()
            .find(|l| l.starts_with("measured"))
            .unwrap()
            .split_whitespace()
            .nth(3)
            .unwrap()
            .to_string();
        let (code, faults) = run_s("faults mesh2 64 --rates 0.0 --trials 2");
        assert_eq!(code, 0, "{faults}");
        assert!(
            faults.contains(&measured),
            "intact row must show β̂ {measured}: {faults}"
        );
    }

    #[test]
    fn faults_rejects_bad_rates() {
        let (code, out) = run_s("faults mesh2 64 --rates nope");
        assert_eq!(code, 1);
        assert!(out.contains("not a number"), "{out}");
        let (code, out) = run_s("faults mesh2 64 --rates 1.5");
        assert_eq!(code, 1);
        assert!(out.contains("must lie in"), "{out}");
    }

    #[test]
    fn beta_accepts_max_ticks() {
        let (code, plain) = run_s("beta mesh2 64 --trials 2");
        assert_eq!(code, 0, "{plain}");
        let (code, budget) = run_s("beta mesh2 64 --trials 2 --max-ticks 1000000");
        assert_eq!(code, 0, "{budget}");
        // A generous explicit budget changes nothing.
        assert_eq!(plain, budget);
    }
}
