//! Compact undirected multigraphs with integer edge multiplicities.
//!
//! The paper treats both machines and communication patterns as multigraphs;
//! `E(G)` ("the number of simple edges — sum of multiplicities over all
//! edges") is the quantity its bandwidth definition divides by, and the
//! scalar-multiplied graph `xG` appears throughout Section 2. Both are
//! first-class here ([`Multigraph::simple_edge_count`], [`Multigraph::scaled`]).
//!
//! Storage is CSR (compressed sparse row): two parallel arrays of neighbor
//! ids and multiplicities per node, built once by [`MultigraphBuilder`] and
//! immutable afterwards. All machines in the paper are fixed-degree, so CSR
//! rows are short and BFS over them is cache-friendly — the router in
//! `fcn-routing` iterates these rows in its inner loop.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a vertex. `u32` keeps adjacency arrays half the size of `usize`
/// on 64-bit targets; no machine in the evaluation exceeds 2^32 nodes.
pub type NodeId = u32;

/// A (distinct) undirected edge with its multiplicity, as yielded by
/// [`Multigraph::edges`]. Self-loops have `u == v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Lower endpoint (canonical order `u <= v`).
    pub u: NodeId,
    /// Upper endpoint.
    pub v: NodeId,
    /// Number of parallel links on this edge.
    pub multiplicity: u32,
}

/// Accumulates edges, then freezes into a [`Multigraph`].
///
/// Parallel insertions of the same unordered pair sum their multiplicities.
///
/// ```
/// use fcn_multigraph::MultigraphBuilder;
///
/// let mut b = MultigraphBuilder::new(3);
/// b.add_edge(0, 1).add_edge(1, 2).add_edge_mult(1, 2, 2);
/// let g = b.build();
/// assert_eq!(g.multiplicity(1, 2), 3);
/// assert_eq!(g.simple_edge_count(), 4); // the paper's E(G)
/// ```
#[derive(Debug, Clone)]
pub struct MultigraphBuilder {
    n: usize,
    // Unordered pair (min,max) -> multiplicity. BTreeMap gives deterministic
    // iteration order, so built graphs are identical across runs.
    edges: BTreeMap<(NodeId, NodeId), u32>,
}

impl MultigraphBuilder {
    /// Start a graph on `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph too large for u32 node ids");
        MultigraphBuilder {
            n,
            edges: BTreeMap::new(),
        }
    }

    /// Add an undirected edge with multiplicity 1. Self-loops are allowed
    /// (they arise from super-vertex collapse).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge_mult(u, v, 1)
    }

    /// Add an undirected edge with the given multiplicity.
    pub fn add_edge_mult(&mut self, u: NodeId, v: NodeId, mult: u32) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} nodes",
            self.n
        );
        if mult == 0 {
            return self;
        }
        let key = (u.min(v), u.max(v));
        *self.edges.entry(key).or_insert(0) += mult;
        self
    }

    /// Number of vertices the builder was created with.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Freeze into an immutable CSR multigraph.
    pub fn build(&self) -> Multigraph {
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in self.edges.keys() {
            deg[u as usize] += 1;
            if u != v {
                deg[v as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        let mut mults = vec![0u32; acc];
        let mut simple_edges: u64 = 0;
        let mut distinct_edges = 0usize;
        for (&(u, v), &m) in &self.edges {
            simple_edges += m as u64;
            distinct_edges += 1;
            neighbors[cursor[u as usize]] = v;
            mults[cursor[u as usize]] = m;
            cursor[u as usize] += 1;
            if u != v {
                neighbors[cursor[v as usize]] = u;
                mults[cursor[v as usize]] = m;
                cursor[v as usize] += 1;
            }
        }
        Multigraph {
            offsets,
            neighbors,
            mults,
            simple_edges,
            distinct_edges,
        }
    }
}

/// An immutable undirected multigraph in CSR form.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Multigraph {
    /// `offsets[u]..offsets[u+1]` indexes `neighbors`/`mults` for node `u`.
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    mults: Vec<u32>,
    /// `E(G)`: sum of multiplicities over distinct undirected edges.
    simple_edges: u64,
    distinct_edges: usize,
}

impl Multigraph {
    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        MultigraphBuilder::new(n).build()
    }

    /// Build directly from an unordered edge list (multiplicity 1 each;
    /// duplicates accumulate).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = MultigraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `E(G)`: the sum of multiplicities over all distinct undirected edges —
    /// the paper's "number of simple edges".
    pub fn simple_edge_count(&self) -> u64 {
        self.simple_edges
    }

    /// Number of distinct undirected edges (multiplicity ignored).
    pub fn distinct_edge_count(&self) -> usize {
        self.distinct_edges
    }

    /// A structural fingerprint: a 64-bit hash of the CSR arrays.
    ///
    /// Equal graphs hash equal (CSR is canonical: the builder sorts
    /// adjacency deterministically), so the fingerprint can key caches —
    /// notably `fcn-routing`'s route-plan cache — without holding the graph.
    /// Collisions are possible in principle but need ≈ 2³² graphs in one
    /// cache to matter.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the CSR words, with domain separators between arrays.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.node_count() as u64);
        mix(0x0f);
        for &o in &self.offsets {
            mix(o as u64);
        }
        mix(0xf0);
        for (&v, &m) in self.neighbors.iter().zip(&self.mults) {
            mix((v as u64) << 32 | m as u64);
        }
        h
    }

    /// Iterate `(neighbor, multiplicity)` pairs of `u`. Self-loops appear
    /// once.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        self.neighbors[lo..hi]
            .iter()
            .copied()
            .zip(self.mults[lo..hi].iter().copied())
    }

    /// Distinct-neighbor degree of `u` (multiplicities ignored; self-loop
    /// counts once).
    pub fn distinct_degree(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Weighted degree of `u` (sum of incident multiplicities; self-loops
    /// count twice, as in the standard degree-sum convention).
    pub fn degree(&self, u: NodeId) -> u64 {
        self.neighbors(u)
            .map(|(v, m)| if v == u { 2 * m as u64 } else { m as u64 })
            .sum()
    }

    /// Maximum weighted degree.
    pub fn max_degree(&self) -> u64 {
        (0..self.node_count() as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Multiplicity of edge `{u, v}` (0 if absent).
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> u32 {
        self.neighbors(u)
            .find(|&(w, _)| w == v)
            .map_or(0, |(_, m)| m)
    }

    /// True if `{u,v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.multiplicity(u, v) > 0
    }

    /// Iterate all distinct undirected edges with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.node_count() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| v >= u)
                .map(move |(v, m)| EdgeRef {
                    u,
                    v,
                    multiplicity: m,
                })
        })
    }

    /// The paper's `xG`: same vertices and edges, multiplicities scaled by
    /// `x`.
    pub fn scaled(&self, x: u32) -> Multigraph {
        let mut b = MultigraphBuilder::new(self.node_count());
        for e in self.edges() {
            b.add_edge_mult(e.u, e.v, e.multiplicity.saturating_mul(x));
        }
        b.build()
    }

    /// True when every pair of vertices is joined by a path.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Induced subgraph on the given vertices (renumbered 0..k in the order
    /// given). Returns the subgraph and the old-id-per-new-id table.
    pub fn induced(&self, vertices: &[NodeId]) -> (Multigraph, Vec<NodeId>) {
        let mut new_id = vec![NodeId::MAX; self.node_count()];
        for (i, &v) in vertices.iter().enumerate() {
            assert!(
                new_id[v as usize] == NodeId::MAX,
                "duplicate vertex {v} in induced set"
            );
            new_id[v as usize] = i as NodeId;
        }
        let mut b = MultigraphBuilder::new(vertices.len());
        for e in self.edges() {
            let (nu, nv) = (new_id[e.u as usize], new_id[e.v as usize]);
            if nu != NodeId::MAX && nv != NodeId::MAX {
                b.add_edge_mult(nu, nv, e.multiplicity);
            }
        }
        (b.build(), vertices.to_vec())
    }

    /// Sum of multiplicities of self-loops.
    pub fn self_loop_count(&self) -> u64 {
        (0..self.node_count() as NodeId)
            .map(|u| self.multiplicity(u, u) as u64)
            .sum()
    }

    /// Graphviz `dot` rendering (small graphs; for docs and debugging).
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = format!("graph {name} {{\n");
        for e in self.edges() {
            if e.multiplicity == 1 {
                let _ = writeln!(s, "  {} -- {};", e.u, e.v);
            } else {
                let _ = writeln!(s, "  {} -- {} [label=\"x{}\"];", e.u, e.v, e.multiplicity);
            }
        }
        s.push('}');
        s
    }
}

impl fmt::Debug for Multigraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Multigraph(n={}, distinct_edges={}, E={})",
            self.node_count(),
            self.distinct_edge_count(),
            self.simple_edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Multigraph {
        Multigraph::from_edges(3, [(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn builder_accumulates_multiplicity() {
        let mut b = MultigraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0).add_edge_mult(0, 1, 3);
        let g = b.build();
        assert_eq!(g.multiplicity(0, 1), 5);
        assert_eq!(g.simple_edge_count(), 5);
        assert_eq!(g.distinct_edge_count(), 1);
    }

    #[test]
    fn csr_adjacency_is_symmetric() {
        let g = triangle();
        for u in 0..3 {
            let nb: Vec<_> = g.neighbors(u).map(|(v, _)| v).collect();
            assert_eq!(nb.len(), 2);
            for v in nb {
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn degrees_and_edges() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.edges().count(), 3);
        assert_eq!(g.simple_edge_count(), 3);
    }

    #[test]
    fn self_loops_count_once_in_rows_twice_in_degree() {
        let mut b = MultigraphBuilder::new(1);
        b.add_edge_mult(0, 0, 2);
        let g = b.build();
        assert_eq!(g.distinct_degree(0), 1);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.self_loop_count(), 2);
        assert_eq!(g.simple_edge_count(), 2);
    }

    #[test]
    fn scaled_multiplies_multiplicities() {
        let g = triangle().scaled(7);
        assert_eq!(g.simple_edge_count(), 21);
        assert_eq!(g.multiplicity(1, 2), 7);
        assert_eq!(g.distinct_edge_count(), 3);
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let g = Multigraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(Multigraph::empty(0).is_connected());
        assert!(Multigraph::empty(1).is_connected());
        assert!(!Multigraph::empty(2).is_connected());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Multigraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, ids) = g.induced(&[1, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edges().count(), 2); // 1-2 and 2-3 survive
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2));
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn zero_multiplicity_is_noop() {
        let mut b = MultigraphBuilder::new(2);
        b.add_edge_mult(0, 1, 0);
        let g = b.build();
        assert_eq!(g.distinct_edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        MultigraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn dot_rendering_mentions_edges() {
        let dot = triangle().to_dot("t");
        assert!(dot.contains("0 -- 1"));
        assert!(dot.starts_with("graph t {"));
    }

    #[test]
    fn deterministic_build() {
        let g1 = triangle();
        let g2 = triangle();
        assert_eq!(g1, g2);
    }
}
