//! Vertex cuts, cut capacity, and flux upper bounds on delivery rate.
//!
//! The paper's lower bounds on routing time come from a "simple flux
//! argument ... since at most one message crosses an edge per tick": if a
//! fraction `f` of the traffic must cross a cut of capacity `cap`, the
//! delivery rate is at most `cap / f`. Minimizing that quotient over cuts
//! upper-bounds the operational bandwidth `β(H, π)` and is how Table 4's
//! `β` column is certified from above.
//!
//! Finding the optimal cut is NP-hard; the paper only ever needs *good
//! enough* witnesses. We combine three generators — id-prefix sweeps
//! (topologies number nodes so prefixes are geometric cuts), BFS balls, and
//! random seeds — with a Fiduccia–Mattheyses-style local improvement pass.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::dist::bfs_distances;
use crate::graph::{Multigraph, NodeId};
use crate::traffic::Traffic;

/// A two-sided vertex cut: `side[u] == true` puts `u` in `S`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cut {
    /// `side[v]` is the side of node `v` (`true` = S-side).
    pub side: Vec<bool>,
}

/// Capacity and balance of a cut, plus the flux quotient against a traffic
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutStats {
    /// Sum of multiplicities of edges with endpoints on opposite sides.
    pub capacity: u64,
    /// |S|.
    pub size_s: usize,
    /// |V \ S|.
    pub size_t: usize,
    /// Fraction of the traffic crossing the cut.
    pub crossing_fraction: f64,
    /// `2 · capacity / crossing_fraction`: an upper bound on the delivery
    /// rate (messages per tick) any router can sustain under the
    /// distribution. The factor 2 is because an undirected link of
    /// multiplicity `m` is two opposite unit wires, so up to `2m` messages
    /// cross it per tick.
    pub rate_bound: f64,
}

impl Cut {
    /// Cut with `S = {u : u < k}` (an id-prefix cut).
    pub fn prefix(n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "prefix cut must be nontrivial");
        Cut {
            side: (0..n).map(|u| u < k).collect(),
        }
    }

    /// Cut from an explicit member set.
    pub fn from_members(n: usize, members: &[NodeId]) -> Self {
        let mut side = vec![false; n];
        for &u in members {
            side[u as usize] = true;
        }
        Cut { side }
    }

    /// Sum of multiplicities crossing the cut.
    pub fn capacity(&self, g: &Multigraph) -> u64 {
        g.edges()
            .filter(|e| self.side[e.u as usize] != self.side[e.v as usize])
            .map(|e| e.multiplicity as u64)
            .sum()
    }

    /// True when both sides are nonempty.
    pub fn is_nontrivial(&self) -> bool {
        self.side.iter().any(|&b| b) && self.side.iter().any(|&b| !b)
    }

    /// Full statistics against a traffic distribution.
    ///
    /// Returns `None` for trivial cuts or cuts no traffic crosses (the flux
    /// argument gives no information there).
    pub fn stats(&self, g: &Multigraph, traffic: &Traffic) -> Option<CutStats> {
        if !self.is_nontrivial() {
            return None;
        }
        let crossing_fraction = traffic.crossing_fraction(&self.side);
        if crossing_fraction <= 0.0 {
            return None;
        }
        let capacity = self.capacity(g);
        let size_s = self.side.iter().filter(|&&b| b).count();
        Some(CutStats {
            capacity,
            size_s,
            size_t: self.side.len() - size_s,
            crossing_fraction,
            rate_bound: 2.0 * capacity as f64 / crossing_fraction,
        })
    }
}

/// One Fiduccia–Mattheyses-style pass: greedily move single vertices across
/// the cut whenever the move lowers the flux quotient, keeping both sides
/// nonempty.
///
/// Gains are maintained incrementally — flipping `u` changes the cut
/// capacity by (same-side − cross-side incident multiplicity) and the
/// crossing traffic by the analogous pair sums — so a full sweep costs
/// `O(E + P)` instead of `O(n·E)`.
pub fn improve_cut(g: &Multigraph, traffic: &Traffic, cut: &mut Cut, sweeps: usize) {
    let n = g.node_count();
    if !cut.is_nontrivial() {
        return;
    }
    // Current aggregates.
    let mut capacity = cut.capacity(g) as i64;
    let mut size_s = cut.side.iter().filter(|&&b| b).count() as i64;
    // Traffic bookkeeping: for Pairs, per-node pair adjacency (undirected
    // weights); crossing count maintained incrementally. For Symmetric the
    // crossing fraction is a closed form of |S|.
    let pair_adj: Option<Vec<Vec<(NodeId, u32)>>> = match traffic.kind() {
        crate::traffic::TrafficKind::Symmetric => None,
        crate::traffic::TrafficKind::Pairs(p) => {
            let mut adj: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); n];
            for &(a, b) in p {
                adj[a as usize].push((b, 1));
                adj[b as usize].push((a, 1));
            }
            Some(adj)
        }
    };
    let total_pairs = traffic.pair_count() as f64;
    let mut crossing_pairs: i64 = match traffic.kind() {
        crate::traffic::TrafficKind::Symmetric => 0, // unused
        crate::traffic::TrafficKind::Pairs(p) => p
            .iter()
            .filter(|&&(a, b)| cut.side[a as usize] != cut.side[b as usize])
            .count() as i64,
    };
    let nf = n as f64;
    let symmetric = pair_adj.is_none();
    let rate_of = move |capacity: i64, size_s: i64, crossing_pairs: i64| -> Option<f64> {
        if size_s == 0 || size_s == n as i64 {
            return None; // trivial
        }
        let frac = if symmetric {
            let s = size_s as f64;
            2.0 * s * (nf - s) / (nf * (nf - 1.0))
        } else {
            crossing_pairs as f64 / total_pairs
        };
        if frac <= 0.0 {
            None
        } else {
            Some(2.0 * capacity as f64 / frac)
        }
    };
    let Some(mut current) = rate_of(capacity, size_s, crossing_pairs) else {
        return;
    };
    for _ in 0..sweeps {
        let mut improved = false;
        for u in 0..n as NodeId {
            // Deltas if u flips: same-side incident mass becomes crossing
            // and vice versa.
            let mut cap_delta: i64 = 0;
            for (v, m) in g.neighbors(u) {
                if v == u {
                    continue; // self-loops never cross
                }
                if cut.side[u as usize] == cut.side[v as usize] {
                    cap_delta += m as i64;
                } else {
                    cap_delta -= m as i64;
                }
            }
            let s_delta: i64 = if cut.side[u as usize] { -1 } else { 1 };
            let cross_delta: i64 = match &pair_adj {
                None => 0,
                Some(adj) => adj[u as usize]
                    .iter()
                    .map(|&(w, wt)| {
                        if w == u {
                            0
                        } else if cut.side[u as usize] == cut.side[w as usize] {
                            wt as i64
                        } else {
                            -(wt as i64)
                        }
                    })
                    .sum(),
            };
            if let Some(r) = rate_of(
                capacity + cap_delta,
                size_s + s_delta,
                crossing_pairs + cross_delta,
            ) {
                if r + 1e-12 < current {
                    cut.side[u as usize] = !cut.side[u as usize];
                    capacity += cap_delta;
                    size_s += s_delta;
                    crossing_pairs += cross_delta;
                    current = r;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Generate candidate cuts: id prefixes at geometric sizes, BFS balls of
/// several radii around random seeds, and random balanced bipartitions.
pub fn candidate_cuts(g: &Multigraph, rng: &mut impl Rng, random_seeds: usize) -> Vec<Cut> {
    let n = g.node_count();
    let mut cuts = Vec::new();
    if n < 2 {
        return cuts;
    }
    // Prefix cuts at n/2, n/4, n/8, ... and 3n/4.
    let mut k = n / 2;
    while k >= 1 {
        cuts.push(Cut::prefix(n, k));
        if k == 1 {
            break;
        }
        k /= 2;
    }
    if n >= 4 {
        cuts.push(Cut::prefix(n, 3 * n / 4));
    }
    // BFS balls.
    for _ in 0..random_seeds {
        let src = rng.random_range(0..n as NodeId);
        let dist = bfs_distances(g, src);
        let max_d = dist.iter().copied().filter(|&d| d != u32::MAX).max();
        let Some(max_d) = max_d else { continue };
        for frac in [4u32, 2, 1] {
            let r = (max_d / frac).max(1);
            let side: Vec<bool> = dist.iter().map(|&d| d <= r && d != u32::MAX).collect();
            let cut = Cut { side };
            if cut.is_nontrivial() {
                cuts.push(cut);
            }
        }
    }
    // Random balanced bipartitions (then improved by the caller).
    for _ in 0..random_seeds {
        let side: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let cut = Cut { side };
        if cut.is_nontrivial() {
            cuts.push(cut);
        }
    }
    cuts
}

/// Best (lowest) flux rate bound over generated-and-improved candidate cuts.
///
/// Returns the bound and its witnessing cut. This is the certified *upper*
/// bound side of the bandwidth sandwich.
pub fn best_flux_bound(
    g: &Multigraph,
    traffic: &Traffic,
    rng: &mut impl Rng,
    random_seeds: usize,
    improve_sweeps: usize,
) -> Option<(CutStats, Cut)> {
    let mut best: Option<(CutStats, Cut)> = None;
    for mut cut in candidate_cuts(g, rng, random_seeds) {
        improve_cut(g, traffic, &mut cut, improve_sweeps);
        if let Some(stats) = cut.stats(g, traffic) {
            let better = match &best {
                None => true,
                Some((b, _)) => stats.rate_bound < b.rate_bound,
            };
            if better {
                best = Some((stats, cut));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn prefix_cut_capacity_on_path() {
        let g = path_graph(8);
        let cut = Cut::prefix(8, 4);
        assert_eq!(cut.capacity(&g), 1);
        let stats = cut.stats(&g, &Traffic::symmetric(8)).unwrap();
        assert_eq!(stats.size_s, 4);
        // crossing fraction = 2*16/56; rate bound = 1/f = 56/32 = 1.75
        assert!((stats.rate_bound - 2.0 * 56.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_cut_rejected() {
        let g = path_graph(4);
        let cut = Cut::from_members(4, &[]);
        assert!(cut.stats(&g, &Traffic::symmetric(4)).is_none());
        let cut = Cut::from_members(4, &[0, 1, 2, 3]);
        assert!(cut.stats(&g, &Traffic::symmetric(4)).is_none());
    }

    #[test]
    fn uncrossed_cut_rejected() {
        let g = path_graph(4);
        let t = Traffic::from_pairs(4, vec![(0, 1), (1, 0)]);
        let cut = Cut::prefix(4, 2); // pairs don't cross
        assert!(cut.stats(&g, &t).is_none());
    }

    #[test]
    fn flux_bound_on_path_is_constant() {
        // A linear array has β = Θ(1): the middle cut certifies it.
        let g = path_graph(64);
        let t = Traffic::symmetric(64);
        let mut rng = StdRng::seed_from_u64(11);
        let (stats, cut) = best_flux_bound(&g, &t, &mut rng, 4, 2).unwrap();
        assert!(stats.rate_bound <= 5.0, "bound {}", stats.rate_bound);
        assert!(cut.is_nontrivial());
    }

    #[test]
    fn flux_bound_scales_with_multiplicity() {
        let g = path_graph(16).scaled(5);
        let t = Traffic::symmetric(16);
        let mid = Cut::prefix(16, 8).stats(&g, &t).unwrap();
        let single = Cut::prefix(16, 8).stats(&path_graph(16), &t).unwrap();
        assert!((mid.rate_bound - 5.0 * single.rate_bound).abs() < 1e-9);
    }

    #[test]
    fn improvement_never_worsens() {
        let g = path_graph(32);
        let t = Traffic::symmetric(32);
        let mut cut = Cut::prefix(32, 3);
        let before = cut.stats(&g, &t).unwrap().rate_bound;
        improve_cut(&g, &t, &mut cut, 4);
        let after = cut.stats(&g, &t).unwrap().rate_bound;
        assert!(after <= before + 1e-9);
    }

    #[test]
    fn candidates_are_nontrivial() {
        let g = path_graph(20);
        let mut rng = StdRng::seed_from_u64(3);
        for cut in candidate_cuts(&g, &mut rng, 3) {
            assert!(cut.is_nontrivial());
            assert_eq!(cut.side.len(), 20);
        }
    }

    #[test]
    #[should_panic(expected = "nontrivial")]
    fn degenerate_prefix_panics() {
        let _ = Cut::prefix(5, 0);
    }
}
