//! Serialization helpers: edge-list text format and JSON round-trips.
//!
//! A downstream user wants to feed their own topologies in and get
//! measurable artifacts out; the text format is one `u v multiplicity` line
//! per distinct edge with a `# nodes N` header, stable across versions.

use crate::graph::{Multigraph, MultigraphBuilder, NodeId};

/// Render as the text edge-list format.
pub fn to_edge_list(g: &Multigraph) -> String {
    use std::fmt::Write;
    let mut s = format!("# nodes {}\n", g.node_count());
    for e in g.edges() {
        let _ = writeln!(s, "{} {} {}", e.u, e.v, e.multiplicity);
    }
    s
}

/// Parse the text edge-list format.
///
/// Blank lines and `#` comments (other than the mandatory first `# nodes N`
/// header) are ignored; missing multiplicity defaults to 1.
pub fn from_edge_list(text: &str) -> Result<Multigraph, String> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines.next().ok_or("empty input")?;
    let n: usize = header
        .strip_prefix("# nodes ")
        .ok_or_else(|| format!("expected '# nodes N' header, got {header:?}"))?
        .trim()
        .parse()
        .map_err(|e| format!("bad node count: {e}"))?;
    let mut b = MultigraphBuilder::new(n);
    for (i, line) in lines.enumerate() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: NodeId = parts
            .next()
            .ok_or_else(|| format!("line {}: missing source", i + 2))?
            .parse()
            .map_err(|e| format!("line {}: bad source: {e}", i + 2))?;
        let v: NodeId = parts
            .next()
            .ok_or_else(|| format!("line {}: missing target", i + 2))?
            .parse()
            .map_err(|e| format!("line {}: bad target: {e}", i + 2))?;
        let mult: u32 = match parts.next() {
            Some(m) => m
                .parse()
                .map_err(|e| format!("line {}: bad multiplicity: {e}", i + 2))?,
            None => 1,
        };
        if (u as usize) >= n || (v as usize) >= n {
            return Err(format!("line {}: edge ({u},{v}) out of range", i + 2));
        }
        b.add_edge_mult(u, v, mult);
    }
    Ok(b.build())
}

/// Schema tag stamped on the JSON envelope emitted by [`to_json`] and
/// required by [`from_json`] — the workspace convention (`fcn-*/N`) for
/// every machine-readable artifact.
pub const JSON_SCHEMA: &str = "fcn-multigraph/1";

#[derive(serde::Serialize, serde::Deserialize)]
struct JsonEnvelope {
    schema: String,
    graph: Multigraph,
}

/// Render as a tagged JSON envelope:
/// `{"schema":"fcn-multigraph/1","graph":{…}}`.
pub fn to_json(g: &Multigraph) -> String {
    let env = JsonEnvelope {
        schema: JSON_SCHEMA.to_string(),
        graph: g.clone(),
    };
    // fcn-allow: ERR-UNWRAP serializing a derived struct of integers and strings cannot fail
    serde_json::to_string(&env).expect("multigraph envelope serializes")
}

/// Parse a JSON-serialized multigraph, validating the schema tag.
pub fn from_json(s: &str) -> Result<Multigraph, String> {
    let env: JsonEnvelope = serde_json::from_str(s).map_err(|e| e.to_string())?;
    if env.schema != JSON_SCHEMA {
        return Err(format!(
            "wrong schema tag {:?} (want {JSON_SCHEMA:?})",
            env.schema
        ));
    }
    Ok(env.graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Multigraph {
        let mut b = MultigraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge_mult(1, 2, 3)
            .add_edge(2, 3)
            .add_edge(3, 0);
        b.build()
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_defaults_multiplicity() {
        let g = from_edge_list("# nodes 3\n0 1\n1 2 5\n").unwrap();
        assert_eq!(g.multiplicity(0, 1), 1);
        assert_eq!(g.multiplicity(1, 2), 5);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(from_edge_list("").is_err());
        assert!(from_edge_list("nodes 3\n0 1\n").is_err());
        assert!(from_edge_list("# nodes 2\n0 5\n").is_err());
        assert!(from_edge_list("# nodes 2\n0 x\n").is_err());
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let g = from_edge_list("# nodes 2\n\n# a comment\n0 1 2\n").unwrap();
        assert_eq!(g.multiplicity(0, 1), 2);
    }

    #[test]
    fn json_roundtrip() {
        let g = sample();
        let text = to_json(&g);
        assert!(text.contains("\"schema\":\"fcn-multigraph/1\""));
        let back = from_json(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn json_rejects_untagged_and_wrong_tag() {
        let g = sample();
        let text = to_json(&g);
        let wrong = text.replace("fcn-multigraph/1", "fcn-multigraph/9");
        let err = from_json(&wrong).unwrap_err();
        assert!(err.contains("schema tag"), "{err}");
        assert!(from_json("{\"nodes\":4,\"edges\":[]}").is_err());
    }
}
