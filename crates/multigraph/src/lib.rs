#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-multigraph
//!
//! Multigraph substrate for the Kruskal–Rappoport (SPAA'94) reproduction.
//!
//! The paper describes both *network machines* and *communication patterns*
//! as multigraphs: "vertices represent processors, and edges represent
//! communication links [or] messages sent between processors". This crate
//! provides that shared representation plus the graph machinery the proofs
//! lean on:
//!
//! * [`graph`] — compact CSR-backed undirected multigraphs with integer edge
//!   multiplicities, including the paper's `E(G)` and `xG` operations;
//! * [`traffic`] — traffic distributions and multigraphs: symmetric,
//!   quasi-symmetric, and the `K_{r,s}` class of "almost complete" graphs
//!   from Lemma 9;
//! * [`cut`] — vertex cuts, cut capacity, and flux upper bounds on delivery
//!   rate, with a Fiduccia–Mattheyses-style local improver;
//! * [`dist`] — BFS, exact/sampled diameter and average distance (the
//!   paper's `λ`-side quantities);
//! * [`embedding`] — explicit embeddings with congestion/dilation accounting
//!   (`C(H,G)`, `Λ(H,G)`, `λ(H,G)` at finite size);
//! * [`collapse`] — super-vertex collapse with load accounting (Lemma 11).

pub mod collapse;
pub mod cut;
pub mod dist;
pub mod embedding;
pub mod graph;
pub mod io;
pub mod traffic;

pub use collapse::{collapse, contiguous_blocks, random_balanced, round_robin, CollapseResult};
pub use cut::{best_flux_bound, candidate_cuts, improve_cut, Cut, CutStats};
pub use dist::{
    avg_distance_exact, avg_distance_sampled, bfs_distances, bfs_parents, diameter, distance_stats,
    path_from_parents, DistanceStats, UNREACHABLE,
};
pub use embedding::{Embedding, EmbeddingStats};
pub use graph::{EdgeRef, Multigraph, MultigraphBuilder, NodeId};
pub use io::{from_edge_list, from_json, to_edge_list, to_json};
pub use traffic::{complete_multigraph, in_k_class, Traffic, TrafficKind};
