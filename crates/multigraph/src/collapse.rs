//! Super-vertex collapse — the Lemma 11 operation.
//!
//! "The nodes of [the circuit] are collected into |H| sets or
//! *super-vertices* and edges between circuit nodes collapsed into different
//! super-vertices become edges between the super-vertices" — emulating a big
//! communication pattern on a smaller host is modeled as collapsing it onto
//! `|H|` super-vertices (with bounded load) and then 1-to-1 embedding the
//! collapsed graph. [`collapse`] performs the operation, preserving internal
//! edges as self-loops so that work accounting stays exact.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Multigraph, MultigraphBuilder, NodeId};

/// Result of collapsing a multigraph onto super-vertices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollapseResult {
    /// The collapsed multigraph on `num_supers` vertices. Edges internal to
    /// a super-vertex become self-loops; parallel inter-super edges
    /// accumulate multiplicity.
    pub graph: Multigraph,
    /// `loads[s]` = number of original vertices assigned to super-vertex `s`.
    pub loads: Vec<u32>,
}

impl CollapseResult {
    /// Maximum load over super-vertices — the Lemma 11 `O(k)`.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Number of super-vertices with zero load ("some super-vertices may be
    /// empty").
    pub fn empty_supers(&self) -> usize {
        self.loads.iter().filter(|&&l| l == 0).count()
    }
}

/// Collapse `g` onto `num_supers` super-vertices according to `assign`
/// (`assign[u]` = super-vertex of original vertex `u`).
///
/// # Panics
/// Panics if `assign` has the wrong length or maps out of range.
pub fn collapse(g: &Multigraph, assign: &[NodeId], num_supers: usize) -> CollapseResult {
    assert_eq!(assign.len(), g.node_count(), "assignment length mismatch");
    let mut loads = vec![0u32; num_supers];
    for &s in assign {
        assert!((s as usize) < num_supers, "assignment out of range");
        loads[s as usize] += 1;
    }
    let mut b = MultigraphBuilder::new(num_supers);
    for e in g.edges() {
        b.add_edge_mult(assign[e.u as usize], assign[e.v as usize], e.multiplicity);
    }
    CollapseResult {
        graph: b.build(),
        loads,
    }
}

/// Contiguous-block assignment of `n` vertices to `m` super-vertices:
/// super-vertex `s` gets ids `[s·⌈n/m⌉, ...)`. Load is `⌈n/m⌉` or less.
/// Topology generators number vertices so blocks are geometrically local,
/// making this the natural "good" emulation assignment.
pub fn contiguous_blocks(n: usize, m: usize) -> Vec<NodeId> {
    assert!(m >= 1 && n >= 1);
    let block = n.div_ceil(m);
    (0..n).map(|u| (u / block) as NodeId).collect()
}

/// Round-robin assignment: vertex `u` goes to super-vertex `u mod m`.
/// Geometrically *bad* on purpose — used as an adversarial baseline.
pub fn round_robin(n: usize, m: usize) -> Vec<NodeId> {
    assert!(m >= 1);
    (0..n).map(|u| (u % m) as NodeId).collect()
}

/// Random balanced assignment: a shuffled contiguous-block assignment, so
/// loads stay within one of each other but placement is random.
pub fn random_balanced(n: usize, m: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut slots: Vec<NodeId> = (0..n).map(|u| (u % m) as NodeId).collect();
    slots.shuffle(rng);
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    #[test]
    fn collapse_cycle_onto_two_halves() {
        let g = cycle(8);
        let r = collapse(&g, &contiguous_blocks(8, 2), 2);
        assert_eq!(r.loads, vec![4, 4]);
        // 2 crossing edges (3-4 and 7-0), 3 internal per side as self-loops.
        assert_eq!(r.graph.multiplicity(0, 1), 2);
        assert_eq!(r.graph.multiplicity(0, 0), 3);
        assert_eq!(r.graph.multiplicity(1, 1), 3);
        // Total simple edges preserved.
        assert_eq!(r.graph.simple_edge_count(), g.simple_edge_count());
    }

    #[test]
    fn edge_mass_is_always_preserved() {
        let g = cycle(12).scaled(3);
        for m in [1, 2, 3, 4, 6, 12] {
            let r = collapse(&g, &round_robin(12, m), m);
            assert_eq!(r.graph.simple_edge_count(), g.simple_edge_count());
        }
    }

    #[test]
    fn round_robin_on_cycle_maximizes_crossing() {
        // u mod 2 on a cycle: every edge crosses — no self-loops.
        let g = cycle(8);
        let r = collapse(&g, &round_robin(8, 2), 2);
        assert_eq!(r.graph.self_loop_count(), 0);
        assert_eq!(r.graph.multiplicity(0, 1), 8);
    }

    #[test]
    fn contiguous_blocks_load_bound() {
        for (n, m) in [(10, 3), (16, 4), (7, 7), (5, 8)] {
            let a = contiguous_blocks(n, m);
            let r = collapse(&cycle(n.max(3)), &contiguous_blocks(n.max(3), m), m);
            assert!(r.max_load() as usize <= (n.max(3)).div_ceil(m));
            assert_eq!(a.len(), n);
        }
    }

    #[test]
    fn random_balanced_is_balanced() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_balanced(100, 7, &mut rng);
        let mut counts = vec![0u32; 7];
        for &s in &a {
            counts[s as usize] += 1;
        }
        let (lo, hi) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        assert!(hi - lo <= 1, "loads {counts:?}");
    }

    #[test]
    fn empty_supers_reported() {
        let g = cycle(4);
        let r = collapse(&g, &[0, 0, 1, 1], 5);
        assert_eq!(r.empty_supers(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_panics() {
        let _ = collapse(&cycle(3), &[0, 1, 5], 2);
    }
}
