//! BFS distances, diameter, and average distance.
//!
//! The paper's minimal-computation-time parameter `Λ(G)` ("proportional to
//! diameter for most machines") and the `λ` column of Table 4 are distance
//! quantities; the distance lower bound on bandwidth (`β ≤ E(G)/avg-dist`)
//! also needs the mean pairwise distance. Everything here is unweighted BFS:
//! multiplicities affect capacity, not hop counts.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::graph::{Multigraph, NodeId};

/// Sentinel distance for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (hops). Unreachable vertices get
/// [`UNREACHABLE`].
pub fn bfs_distances(g: &Multigraph, src: NodeId) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::with_capacity(n.min(1024));
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS that also records one parent per vertex, for shortest-path extraction.
/// Ties are broken toward the neighbor discovered first (deterministic).
pub fn bfs_parents(g: &Multigraph, src: NodeId) -> (Vec<u32>, Vec<NodeId>) {
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = std::collections::VecDeque::with_capacity(n.min(1024));
    dist[src as usize] = 0;
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Extract the `src -> dst` shortest path from a parent array produced by
/// [`bfs_parents`] rooted at `src`. Returns the vertex sequence including
/// both endpoints, or `None` if `dst` is unreachable.
pub fn path_from_parents(parent: &[NodeId], src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if parent[dst as usize] == NodeId::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        path.push(cur);
        debug_assert!(path.len() <= parent.len(), "parent cycle");
    }
    path.reverse();
    Some(path)
}

/// Exact diameter (max eccentricity). `O(n·E)`; use on small graphs or rely
/// on [`distance_stats`] with sampling for large ones.
///
/// # Panics
/// Panics if the graph is disconnected (diameter undefined).
pub fn diameter(g: &Multigraph) -> u32 {
    let mut best = 0;
    for u in 0..g.node_count() as NodeId {
        let d = bfs_distances(g, u);
        let ecc = d.iter().copied().max().unwrap_or(0);
        assert!(ecc != UNREACHABLE, "diameter of a disconnected graph");
        best = best.max(ecc);
    }
    best
}

/// Exact average pairwise distance over ordered pairs.
pub fn avg_distance_exact(g: &Multigraph) -> f64 {
    let n = g.node_count();
    assert!(n >= 2);
    let mut total = 0u64;
    for u in 0..n as NodeId {
        let d = bfs_distances(g, u);
        for (v, &dv) in d.iter().enumerate() {
            assert!(dv != UNREACHABLE, "avg distance of a disconnected graph");
            if v as NodeId != u {
                total += dv as u64;
            }
        }
    }
    total as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Average distance estimated from `samples` random BFS sources.
pub fn avg_distance_sampled(g: &Multigraph, samples: usize, rng: &mut impl Rng) -> f64 {
    let n = g.node_count();
    assert!(n >= 2 && samples >= 1);
    let mut total = 0u64;
    let mut count = 0u64;
    for _ in 0..samples {
        let u = rng.random_range(0..n as NodeId);
        let d = bfs_distances(g, u);
        for (v, &dv) in d.iter().enumerate() {
            assert!(dv != UNREACHABLE, "sampled distance on disconnected graph");
            if v as NodeId != u {
                total += dv as u64;
                count += 1;
            }
        }
    }
    total as f64 / count as f64
}

/// Distance summary for a machine: the paper's `λ`-side quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceStats {
    /// Max observed eccentricity (== diameter when `exact`).
    pub diameter: u32,
    /// Mean pairwise distance over the probed sources.
    pub avg_distance: f64,
    /// Whether every vertex was used as a BFS source.
    pub exact: bool,
}

/// Compute [`DistanceStats`], exactly when `n <= exact_threshold`, otherwise
/// from `samples` random sources.
pub fn distance_stats(
    g: &Multigraph,
    exact_threshold: usize,
    samples: usize,
    rng: &mut impl Rng,
) -> DistanceStats {
    let n = g.node_count();
    if n <= exact_threshold {
        return DistanceStats {
            diameter: diameter(g),
            avg_distance: avg_distance_exact(g),
            exact: true,
        };
    }
    let mut max_ecc = 0;
    let mut total = 0u64;
    let mut count = 0u64;
    for _ in 0..samples.max(1) {
        let u = rng.random_range(0..n as NodeId);
        let d = bfs_distances(g, u);
        for (v, &dv) in d.iter().enumerate() {
            assert!(dv != UNREACHABLE, "distance stats on disconnected graph");
            if v as NodeId != u {
                total += dv as u64;
                count += 1;
                max_ecc = max_ecc.max(dv);
            }
        }
    }
    DistanceStats {
        diameter: max_ecc,
        avg_distance: total as f64 / count as f64,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)))
    }

    fn cycle_graph(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Multigraph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn parents_give_shortest_paths() {
        let g = cycle_graph(8);
        let (dist, parent) = bfs_parents(&g, 0);
        let p = path_from_parents(&parent, 0, 3).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len() as u32 - 1, dist[3]);
        // consecutive vertices adjacent
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn unreachable_path_is_none() {
        let g = Multigraph::from_edges(3, [(0, 1)]);
        let (_, parent) = bfs_parents(&g, 0);
        assert!(path_from_parents(&parent, 0, 2).is_none());
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path_graph(10)), 9);
        assert_eq!(diameter(&cycle_graph(10)), 5);
        assert_eq!(diameter(&cycle_graph(9)), 4);
    }

    #[test]
    fn avg_distance_of_path3() {
        // distances: (0,1)=1 (0,2)=2 (1,2)=1 → ordered mean = 8/6
        let g = path_graph(3);
        assert!((avg_distance_exact(&g) - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_close_to_exact() {
        let g = cycle_graph(64);
        let exact = avg_distance_exact(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let approx = avg_distance_sampled(&g, 16, &mut rng);
        assert!((approx - exact).abs() / exact < 0.05);
    }

    #[test]
    fn stats_exact_and_sampled_modes() {
        let g = cycle_graph(32);
        let mut rng = StdRng::seed_from_u64(2);
        let s1 = distance_stats(&g, 64, 4, &mut rng);
        assert!(s1.exact);
        assert_eq!(s1.diameter, 16);
        let s2 = distance_stats(&g, 8, 8, &mut rng);
        assert!(!s2.exact);
        assert!(s2.diameter >= 8); // sampled eccentricity lower-bounds diameter
        assert!((s2.avg_distance - s1.avg_distance).abs() / s1.avg_distance < 0.1);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn diameter_rejects_disconnected() {
        let g = Multigraph::from_edges(4, [(0, 1), (2, 3)]);
        let _ = diameter(&g);
    }
}
