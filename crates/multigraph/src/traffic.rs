//! Traffic distributions and traffic multigraphs.
//!
//! The paper (following Kruskal–Snir) defines bandwidth relative to a
//! *traffic distribution* `π`: the relative frequency of source–destination
//! pairs. Three families matter here:
//!
//! * the **symmetric** distribution (all `n(n-1)` ordered pairs equally
//!   likely) — this is the `π` in the headline `β(M)`;
//! * **quasi-symmetric** distributions (`Ω(n²)` pairs equally likely, rest
//!   forbidden) — the premise of bottleneck-freeness and the class the
//!   Lemma 9 witness `γ` lives in;
//! * the **`K_{r,s}`** class of "almost complete" traffic multigraphs
//!   (`Θ(r²s)` edges, ≤ `s` parallel edges per pair) from which `γ` and `ξ`
//!   are drawn.
//!
//! A [`Traffic`] supports the two operations the pipeline needs: sampling
//! message pairs for the router, and computing the fraction of traffic that
//! crosses a vertex cut (for flux bounds) — without ever materializing the
//! `Θ(n²)` pair set for the symmetric case.

use rand::seq::IndexedRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::graph::{Multigraph, MultigraphBuilder, NodeId};

/// How the pair set of a [`Traffic`] is represented.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficKind {
    /// All ordered pairs `(u, v)`, `u != v`, equally likely.
    Symmetric,
    /// An explicit list of ordered pairs with uniform probability. The pair
    /// list may contain repeats, which act as integer weights.
    Pairs(Vec<(NodeId, NodeId)>),
}

/// A traffic distribution over `n` processors.
///
/// ```
/// use fcn_multigraph::{Cut, Traffic};
///
/// let t = Traffic::symmetric(8);
/// let half = Cut::prefix(8, 4);
/// // 2·4·4 of the 8·7 ordered pairs cross a half/half split.
/// assert!((t.crossing_fraction(&half.side) - 32.0 / 56.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traffic {
    n: usize,
    kind: TrafficKind,
}

impl Traffic {
    /// The symmetric distribution on `n` processors — the paper's default
    /// `π` under which `β(M)` is defined.
    pub fn symmetric(n: usize) -> Self {
        assert!(n >= 2, "symmetric traffic needs at least two processors");
        Traffic {
            n,
            kind: TrafficKind::Symmetric,
        }
    }

    /// Uniform traffic over an explicit pair list.
    ///
    /// # Panics
    /// Panics on an empty list, a pair out of range, or a self-pair.
    pub fn from_pairs(n: usize, pairs: Vec<(NodeId, NodeId)>) -> Self {
        assert!(!pairs.is_empty(), "traffic needs at least one pair");
        for &(u, v) in &pairs {
            assert!((u as usize) < n && (v as usize) < n, "pair out of range");
            assert!(u != v, "self-pair ({u},{u}) not allowed in traffic");
        }
        Traffic {
            n,
            kind: TrafficKind::Pairs(pairs),
        }
    }

    /// A quasi-symmetric distribution: every ordered pair is kept
    /// independently with probability `keep`, so ~`keep·n²` pairs are
    /// allowed. `keep` must be in `(0, 1]`; `keep = Θ(1)` makes the result
    /// quasi-symmetric in the paper's sense.
    pub fn quasi_symmetric_random(n: usize, keep: f64, rng: &mut impl Rng) -> Self {
        assert!(n >= 2 && keep > 0.0 && keep <= 1.0);
        let mut pairs = Vec::new();
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v && rng.random::<f64>() < keep {
                    pairs.push((u, v));
                }
            }
        }
        if pairs.is_empty() {
            // Vanishingly unlikely for the sizes we use; keep it total.
            pairs.push((0, 1));
        }
        Traffic::from_pairs(n, pairs)
    }

    /// The adversarial quasi-symmetric distribution that stresses a machine's
    /// bisection: all `(n/2)²·2` ordered pairs between the first and second
    /// halves of the id space. Topology generators number nodes so that this
    /// is a geometrically meaningful half/half split.
    pub fn bipartite_halves(n: usize) -> Self {
        assert!(n >= 2);
        let half = n / 2;
        let mut pairs = Vec::with_capacity(2 * half * (n - half));
        for u in 0..half as NodeId {
            for v in half as NodeId..n as NodeId {
                pairs.push((u, v));
                pairs.push((v, u));
            }
        }
        Traffic::from_pairs(n, pairs)
    }

    /// Quasi-symmetric traffic restricted to a sub-population: symmetric
    /// traffic among the first `m <= n` processors (the "cheating emulation"
    /// case Lemma 12 must handle, where the pattern is much smaller than the
    /// host).
    pub fn symmetric_on_prefix(n: usize, m: usize) -> Self {
        assert!(2 <= m && m <= n);
        let mut pairs = Vec::with_capacity(m * (m - 1));
        for u in 0..m as NodeId {
            for v in 0..m as NodeId {
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        Traffic::from_pairs(n, pairs)
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Representation.
    pub fn kind(&self) -> &TrafficKind {
        &self.kind
    }

    /// Number of distinct allowed ordered pairs (with multiplicity for the
    /// explicit representation).
    pub fn pair_count(&self) -> u64 {
        match &self.kind {
            TrafficKind::Symmetric => (self.n as u64) * (self.n as u64 - 1),
            TrafficKind::Pairs(p) => p.len() as u64,
        }
    }

    /// True if the distribution has `Ω(n²)` allowed pairs with the given
    /// constant: `pair_count >= c·n²`.
    pub fn is_quasi_symmetric(&self, c: f64) -> bool {
        self.pair_count() as f64 >= c * (self.n as f64) * (self.n as f64)
    }

    /// Sample one source–destination pair.
    pub fn sample(&self, rng: &mut impl Rng) -> (NodeId, NodeId) {
        match &self.kind {
            TrafficKind::Symmetric => {
                let u = rng.random_range(0..self.n as NodeId);
                let mut v = rng.random_range(0..self.n as NodeId - 1);
                if v >= u {
                    v += 1;
                }
                (u, v)
            }
            // fcn-allow: ERR-UNWRAP the Pairs constructor asserts a nonempty list
            TrafficKind::Pairs(p) => *p.choose(rng).expect("nonempty pair list"),
        }
    }

    /// Fraction of traffic whose endpoints straddle the cut `side` (where
    /// `side[u]` is the side of vertex `u`). This is the `f` in the flux
    /// bound `rate ≤ cap/f` and is computed in closed form for the symmetric
    /// case.
    pub fn crossing_fraction(&self, side: &[bool]) -> f64 {
        assert_eq!(side.len(), self.n);
        match &self.kind {
            TrafficKind::Symmetric => {
                let s = side.iter().filter(|&&b| b).count() as f64;
                let t = self.n as f64 - s;
                2.0 * s * t / (self.n as f64 * (self.n as f64 - 1.0))
            }
            TrafficKind::Pairs(p) => {
                let crossing = p
                    .iter()
                    .filter(|&&(u, v)| side[u as usize] != side[v as usize])
                    .count();
                crossing as f64 / p.len() as f64
            }
        }
    }

    /// Materialize the traffic multigraph `T_π` (undirected; the ordered
    /// pairs `(u,v)` and `(v,u)` merge into multiplicity on `{u,v}`).
    ///
    /// For the symmetric case this is `K_n` with multiplicity 2 per pair;
    /// only call it for small `n`.
    pub fn to_multigraph(&self) -> Multigraph {
        let mut b = MultigraphBuilder::new(self.n);
        match &self.kind {
            TrafficKind::Symmetric => {
                for u in 0..self.n as NodeId {
                    for v in (u + 1)..self.n as NodeId {
                        b.add_edge_mult(u, v, 2);
                    }
                }
            }
            TrafficKind::Pairs(p) => {
                for &(u, v) in p {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}

/// The complete multigraph `K_{r,s}` of the paper's Definition: `r` vertices
/// and exactly `s` parallel edges between every pair — the canonical member
/// of the `K_{r,s}` class (`Θ(r²s)` simple edges, no pair exceeding `s`).
pub fn complete_multigraph(r: usize, s: u32) -> Multigraph {
    let mut b = MultigraphBuilder::new(r);
    for u in 0..r as NodeId {
        for v in (u + 1)..r as NodeId {
            b.add_edge_mult(u, v, s);
        }
    }
    b.build()
}

/// Check membership in the paper's class `K_{r,s}` up to constants: `g` has
/// `r` vertices, at least `lo_frac` of the maximum possible `r(r-1)s/2`
/// simple edges, and no vertex pair joined by more than `s` edges.
pub fn in_k_class(g: &Multigraph, s: u32, lo_frac: f64) -> bool {
    let r = g.node_count() as f64;
    if g.edges().any(|e| e.multiplicity > s) {
        return false;
    }
    (g.simple_edge_count() as f64) >= lo_frac * r * (r - 1.0) * (s as f64) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_counts_and_sampling() {
        let t = Traffic::symmetric(8);
        assert_eq!(t.pair_count(), 56);
        assert!(t.is_quasi_symmetric(0.5));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let (u, v) = t.sample(&mut rng);
            assert_ne!(u, v);
            assert!(u < 8 && v < 8);
        }
    }

    #[test]
    fn symmetric_sampling_is_roughly_uniform() {
        let t = Traffic::symmetric(4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [[0u32; 4]; 4];
        for _ in 0..24_000 {
            let (u, v) = t.sample(&mut rng);
            counts[u as usize][v as usize] += 1;
        }
        for (u, row) in counts.iter().enumerate() {
            for (v, &count) in row.iter().enumerate() {
                if u != v {
                    // expectation 2000 per ordered pair
                    assert!(
                        (count as i64 - 2000).abs() < 400,
                        "pair ({u},{v}) count {count}"
                    );
                }
            }
        }
    }

    #[test]
    fn crossing_fraction_symmetric_closed_form() {
        let t = Traffic::symmetric(10);
        let mut side = vec![false; 10];
        for s in side.iter_mut().take(5) {
            *s = true;
        }
        // 2*5*5 / (10*9)
        assert!((t.crossing_fraction(&side) - 50.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_fraction_pairs() {
        let t = Traffic::from_pairs(4, vec![(0, 1), (0, 2), (2, 3)]);
        let side = vec![true, true, false, false];
        assert!((t.crossing_fraction(&side) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bipartite_halves_is_quasi_symmetric() {
        let t = Traffic::bipartite_halves(16);
        assert_eq!(t.pair_count(), 2 * 8 * 8);
        assert!(t.is_quasi_symmetric(0.4));
        // All pairs cross the half cut.
        let side: Vec<bool> = (0..16).map(|u| u < 8).collect();
        assert!((t.crossing_fraction(&side) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_symmetric_ignores_suffix() {
        let t = Traffic::symmetric_on_prefix(10, 4);
        assert_eq!(t.pair_count(), 12);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let (u, v) = t.sample(&mut rng);
            assert!(u < 4 && v < 4);
        }
    }

    #[test]
    fn quasi_symmetric_random_density() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = Traffic::quasi_symmetric_random(32, 0.5, &mut rng);
        let expected = (32.0 * 31.0) * 0.5;
        let got = t.pair_count() as f64;
        assert!((got - expected).abs() < expected * 0.25, "got {got}");
        assert!(t.is_quasi_symmetric(0.25));
    }

    #[test]
    fn symmetric_multigraph_is_doubled_kn() {
        let g = Traffic::symmetric(5).to_multigraph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.simple_edge_count(), 2 * 10);
        assert_eq!(g.multiplicity(0, 4), 2);
    }

    #[test]
    fn complete_multigraph_k_class() {
        let k = complete_multigraph(6, 3);
        assert_eq!(k.simple_edge_count(), 15 * 3);
        assert!(in_k_class(&k, 3, 0.9));
        assert!(!in_k_class(&k, 2, 0.1)); // multiplicity cap violated
        assert!(!in_k_class(&Multigraph::empty(6), 3, 0.1)); // too few edges
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pairs_rejected() {
        let _ = Traffic::from_pairs(3, vec![(1, 1)]);
    }
}
