//! Embeddings of a guest multigraph into a host, with congestion/dilation
//! accounting.
//!
//! The paper's graph-theoretic bandwidth is `β(H,T) = E(T)/C(H,T)` where
//! `C(H,T)` is the minimum congestion of a (1-to-1) embedding of the traffic
//! multigraph `T` into `H`. Minimum congestion is intractable, but the paper
//! only ever *uses* explicit embeddings as upper-bound witnesses on
//! congestion (hence lower-bound witnesses on bandwidth). [`Embedding`]
//! represents such a witness: a vertex map `φ` plus one host path per
//! distinct guest edge, and [`EmbeddingStats`] measures its congestion `c`,
//! dilation `δ` and average dilation `δ̄` — exactly the quantities of the
//! paper's `C(H,G)`, `Λ(H,G)`, `λ(H,G)` definitions at finite size.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::dist::path_from_parents;
use crate::graph::{EdgeRef, Multigraph, NodeId};

/// An embedding of `guest` into `host`: a vertex map and one host routing
/// path per distinct guest edge (parallel guest edges share the path and
/// contribute their multiplicity to its load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    /// `phi[u]` is the host image of guest vertex `u`.
    pub phi: Vec<NodeId>,
    /// Snapshot of the guest's distinct edges, aligned with `paths`.
    pub guest_edges: Vec<EdgeRef>,
    /// Host vertex sequences; `paths[i]` connects `phi[guest_edges[i].u]` to
    /// `phi[guest_edges[i].v]`. A self-image edge may have a length-1 path.
    pub paths: Vec<Vec<NodeId>>,
}

/// Congestion/dilation measurements of an [`Embedding`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingStats {
    /// Max over host edges of the total guest multiplicity routed across it
    /// — the paper's congestion `c`.
    pub congestion: u64,
    /// Max path length in hops — the dilation `δ`.
    pub dilation: u32,
    /// Multiplicity-weighted mean path length — the average dilation `δ̄`.
    pub avg_dilation: f64,
    /// Total routed load `Σ mult · len` (the "communication volume").
    pub total_load: u64,
}

impl Embedding {
    /// Embed `guest` into `host` along BFS shortest paths.
    ///
    /// One BFS tree is computed per distinct source image and reused for all
    /// guest edges sharing it; `rng` permutes each vertex's neighbor
    /// preference so independent calls spread load across equal-length
    /// paths. `phi` may be many-to-one (the emulation case).
    ///
    /// # Panics
    /// Panics if `phi` has the wrong length, maps out of range, or some edge
    /// endpoint pair is disconnected in the host.
    pub fn shortest_paths(
        guest: &Multigraph,
        host: &Multigraph,
        phi: Vec<NodeId>,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(phi.len(), guest.node_count(), "phi must map every vertex");
        for &h in &phi {
            assert!((h as usize) < host.node_count(), "phi maps out of range");
        }
        let guest_edges: Vec<EdgeRef> = guest.edges().collect();
        let mut trees: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut paths = Vec::with_capacity(guest_edges.len());
        for e in &guest_edges {
            let (src, dst) = (phi[e.u as usize], phi[e.v as usize]);
            if src == dst {
                paths.push(vec![src]);
                continue;
            }
            // Tie-breaking is randomized independently per tree: a shared
            // neighbor order would make all trees prefer the same corridors
            // and inflate the congestion witness.
            let parent = trees
                .entry(src)
                .or_insert_with(|| bfs_parents_shuffled(host, src, rng));
            let p = path_from_parents(parent, src, dst)
                // fcn-allow: ERR-UNWRAP documented precondition: callers embed into connected hosts
                .unwrap_or_else(|| panic!("host disconnects images {src} and {dst}"));
            paths.push(p);
        }
        Embedding {
            phi,
            guest_edges,
            paths,
        }
    }

    /// Embed `guest` into `host` via per-edge random intermediates
    /// (Valiant-style): each guest edge routes `φ(u) → w → φ(v)` with `w`
    /// uniform, both legs on BFS trees rooted at `w`.
    ///
    /// Compared to [`Embedding::shortest_paths`], paths are at most twice as
    /// long but the per-source tree-trunk correlation disappears (each pair
    /// uses an independent random tree), which makes the congestion witness
    /// near-balanced — the right choice when the embedding certifies a
    /// bandwidth *lower bound* (`β ≥ E/c`).
    pub fn valiant(
        guest: &Multigraph,
        host: &Multigraph,
        phi: Vec<NodeId>,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(phi.len(), guest.node_count(), "phi must map every vertex");
        for &h in &phi {
            assert!((h as usize) < host.node_count(), "phi maps out of range");
        }
        let guest_edges: Vec<EdgeRef> = guest.edges().collect();
        let hn = host.node_count() as NodeId;
        // Sample intermediates, then group edges by intermediate so only one
        // BFS tree lives at a time.
        let mids: Vec<NodeId> = (0..guest_edges.len())
            .map(|_| rng.random_range(0..hn))
            .collect();
        let mut order: Vec<usize> = (0..guest_edges.len()).collect();
        order.sort_by_key(|&i| mids[i]);
        let mut paths: Vec<Vec<NodeId>> = vec![Vec::new(); guest_edges.len()];
        let mut current: Option<NodeId> = None;
        let mut parent: Vec<NodeId> = Vec::new();
        for &i in &order {
            let e = &guest_edges[i];
            let (src, dst) = (phi[e.u as usize], phi[e.v as usize]);
            if src == dst {
                paths[i] = vec![src];
                continue;
            }
            let w = mids[i];
            if current != Some(w) {
                parent = bfs_parents_shuffled(host, w, rng);
                current = Some(w);
            }
            // Leg 1: src -> w is the reverse of the tree path w -> src.
            let mut leg1 = path_from_parents(&parent, w, src)
                // fcn-allow: ERR-UNWRAP documented precondition: callers embed into connected hosts
                .unwrap_or_else(|| panic!("host disconnects {w} and {src}"));
            leg1.reverse();
            let leg2 = path_from_parents(&parent, w, dst)
                // fcn-allow: ERR-UNWRAP documented precondition: callers embed into connected hosts
                .unwrap_or_else(|| panic!("host disconnects {w} and {dst}"));
            leg1.extend_from_slice(&leg2[1..]);
            paths[i] = leg1;
        }
        Embedding {
            phi,
            guest_edges,
            paths,
        }
    }

    /// The identity embedding of a graph into itself (paths are single
    /// edges). Useful as a baseline witness: congestion equals the max edge
    /// multiplicity.
    pub fn identity(g: &Multigraph) -> Self {
        let guest_edges: Vec<EdgeRef> = g.edges().collect();
        let paths = guest_edges
            .iter()
            .map(|e| {
                if e.u == e.v {
                    vec![e.u]
                } else {
                    vec![e.u, e.v]
                }
            })
            .collect();
        Embedding {
            phi: (0..g.node_count() as NodeId).collect(),
            guest_edges,
            paths,
        }
    }

    /// Verify structural validity against the host: endpoints match `phi`,
    /// consecutive path vertices are host-adjacent.
    pub fn validate(&self, host: &Multigraph) -> Result<(), String> {
        if self.guest_edges.len() != self.paths.len() {
            return Err("paths and guest_edges length mismatch".into());
        }
        for (e, p) in self.guest_edges.iter().zip(&self.paths) {
            let (src, dst) = (self.phi[e.u as usize], self.phi[e.v as usize]);
            if p.is_empty() {
                return Err(format!("empty path for edge {e:?}"));
            }
            if p.first() != Some(&src) || p.last() != Some(&dst) {
                return Err(format!("path endpoints do not match φ for {e:?}"));
            }
            for w in p.windows(2) {
                if !host.has_edge(w[0], w[1]) {
                    return Err(format!("non-adjacent hop {}-{} for {e:?}", w[0], w[1]));
                }
            }
        }
        Ok(())
    }

    /// Per-host-edge load: map from unordered host edge to total guest
    /// multiplicity crossing it.
    pub fn edge_loads(&self) -> BTreeMap<(NodeId, NodeId), u64> {
        let mut loads: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for (e, p) in self.guest_edges.iter().zip(&self.paths) {
            for w in p.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                *loads.entry(key).or_insert(0) += e.multiplicity as u64;
            }
        }
        loads
    }

    /// Measure congestion, dilation and load.
    pub fn stats(&self) -> EmbeddingStats {
        let congestion = self.edge_loads().values().copied().max().unwrap_or(0);
        let mut dilation = 0u32;
        let mut weighted_len = 0u64;
        let mut weight = 0u64;
        for (e, p) in self.guest_edges.iter().zip(&self.paths) {
            let len = (p.len() - 1) as u32;
            dilation = dilation.max(len);
            weighted_len += len as u64 * e.multiplicity as u64;
            weight += e.multiplicity as u64;
        }
        EmbeddingStats {
            congestion,
            dilation,
            avg_dilation: if weight == 0 {
                0.0
            } else {
                weighted_len as f64 / weight as f64
            },
            total_load: weighted_len,
        }
    }

    /// Lower-bound witness on the bandwidth `β(host, guest-as-traffic)`:
    /// `E(guest) / congestion`. (The true bandwidth uses the *minimum*
    /// congestion, so any explicit embedding certifies `β ≥ E/c`.)
    pub fn bandwidth_witness(&self, guest: &Multigraph) -> f64 {
        let stats = self.stats();
        if stats.congestion == 0 {
            f64::INFINITY
        } else {
            guest.simple_edge_count() as f64 / stats.congestion as f64
        }
    }
}

/// BFS parents with per-vertex neighbor shuffling drawn freshly from `rng`:
/// every tree gets independent tie-breaking, so witnesses built from many
/// trees spread load across equal-length alternatives.
fn bfs_parents_shuffled(g: &Multigraph, src: NodeId, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut scratch: Vec<NodeId> = Vec::new();
    dist[src as usize] = 0;
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        scratch.clear();
        scratch.extend(g.neighbors(u).map(|(v, _)| v));
        scratch.shuffle(rng);
        for &v in &scratch {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    fn path(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn identity_embedding_is_valid_with_unit_stats() {
        let g = cycle(6);
        let emb = Embedding::identity(&g);
        emb.validate(&g).unwrap();
        let s = emb.stats();
        assert_eq!(s.congestion, 1);
        assert_eq!(s.dilation, 1);
        assert!((s.avg_dilation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_into_path_dilation() {
        // Embedding C_n into P_n with φ = id forces the wrap edge to dilate
        // across the whole path.
        let guest = cycle(8);
        let host = path(8);
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::shortest_paths(&guest, &host, (0..8).collect(), &mut rng);
        emb.validate(&host).unwrap();
        let s = emb.stats();
        assert_eq!(s.dilation, 7);
        assert_eq!(s.congestion, 2); // wrap path overlaps each unit edge once
    }

    #[test]
    fn many_to_one_phi_produces_self_paths() {
        let guest = cycle(4);
        let host = path(2);
        let mut rng = StdRng::seed_from_u64(2);
        let emb = Embedding::shortest_paths(&guest, &host, vec![0, 0, 1, 1], &mut rng);
        emb.validate(&host).unwrap();
        // Edges 0-1 and 2-3 collapse to self-paths of length 0.
        let s = emb.stats();
        assert_eq!(s.dilation, 1);
        assert_eq!(s.congestion, 2); // edges 1-2 and 3-0 both cross the link
    }

    #[test]
    fn multiplicity_weights_congestion() {
        let guest = Multigraph::from_edges(2, [(0, 1)]).scaled(9);
        let host = path(3);
        let mut rng = StdRng::seed_from_u64(3);
        let emb = Embedding::shortest_paths(&guest, &host, vec![0, 2], &mut rng);
        let s = emb.stats();
        assert_eq!(s.congestion, 9);
        assert_eq!(s.dilation, 2);
        assert_eq!(s.total_load, 18);
    }

    #[test]
    fn bandwidth_witness_matches_ratio() {
        let guest = cycle(8);
        let host = path(8);
        let mut rng = StdRng::seed_from_u64(4);
        let emb = Embedding::shortest_paths(&guest, &host, (0..8).collect(), &mut rng);
        let s = emb.stats();
        let expected = guest.simple_edge_count() as f64 / s.congestion as f64;
        assert!((emb.bandwidth_witness(&guest) - expected).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_bad_paths() {
        let guest = Multigraph::from_edges(2, [(0, 1)]);
        let host = path(3);
        let mut emb = Embedding {
            phi: vec![0, 2],
            guest_edges: guest.edges().collect(),
            paths: vec![vec![0, 2]], // skips vertex 1: not host-adjacent
        };
        assert!(emb.validate(&host).is_err());
        emb.paths = vec![vec![0, 1, 2]];
        assert!(emb.validate(&host).is_ok());
        emb.paths = vec![vec![1, 2]];
        assert!(emb.validate(&host).is_err()); // wrong endpoint
    }

    #[test]
    fn shortest_paths_are_shortest() {
        let guest = Multigraph::from_edges(2, [(0, 1)]);
        let host = cycle(10);
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Embedding::shortest_paths(&guest, &host, vec![0, 3], &mut rng);
        assert_eq!(emb.stats().dilation, 3);
    }

    #[test]
    fn valiant_embedding_validates_and_connects() {
        let guest = cycle(12);
        let host = path(12);
        let mut rng = StdRng::seed_from_u64(8);
        let emb = Embedding::valiant(&guest, &host, (0..12).collect(), &mut rng);
        emb.validate(&host).unwrap();
        for (e, p) in emb.guest_edges.iter().zip(&emb.paths) {
            assert_eq!(*p.first().unwrap(), e.u);
            assert_eq!(*p.last().unwrap(), e.v);
        }
    }

    #[test]
    fn valiant_congestion_within_factor_of_trees() {
        // With per-tree decorrelated tie-breaking the shortest-path witness
        // is the tighter one; Valiant pays its 2x path length but must stay
        // within that factor (it exists for adversarial guests where
        // per-source trees misbehave).
        use crate::graph::MultigraphBuilder;
        use crate::traffic::complete_multigraph;
        let side = 16;
        let mut b = MultigraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let id = (r * side + c) as NodeId;
                if c + 1 < side {
                    b.add_edge(id, id + 1);
                }
                if r + 1 < side {
                    b.add_edge(id, id + side as u32);
                }
            }
        }
        let host = b.build();
        let kn = complete_multigraph(side * side, 1);
        let phi: Vec<NodeId> = (0..(side * side) as NodeId).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let tree_c = Embedding::shortest_paths(&kn, &host, phi.clone(), &mut rng)
            .stats()
            .congestion;
        let val_c = Embedding::valiant(&kn, &host, phi, &mut rng)
            .stats()
            .congestion;
        assert!(
            (val_c as f64) < 2.5 * tree_c as f64,
            "valiant {val_c} vs trees {tree_c}"
        );
    }

    #[test]
    #[should_panic(expected = "disconnect")]
    fn disconnected_host_panics() {
        let guest = Multigraph::from_edges(2, [(0, 1)]);
        let host = Multigraph::from_edges(4, [(0, 1), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Embedding::shortest_paths(&guest, &host, vec![0, 3], &mut rng);
    }
}
