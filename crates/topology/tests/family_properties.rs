//! Property-style invariants across every machine family and a grid of
//! sizes: connectivity, degree bounds, processor-prefix conventions,
//! canonical-cut sanity, and determinism.

use fcn_multigraph::diameter;
use fcn_topology::{Family, Machine, RoutePolicy, Topology};

fn all_machines(target: usize) -> Vec<Machine> {
    Family::all_with_dims(&[1, 2, 3])
        .into_iter()
        .map(|f| f.build_near(target, 0xfa))
        .collect()
}

#[test]
fn fixed_degree_families_have_bounded_degree() {
    for m in all_machines(200) {
        if m.family().fixed_degree() {
            let deg = m.graph().max_degree();
            // The largest constant degree in the zoo is the 3-d X-Grid
            // (3^3 - 1 = 26).
            assert!(deg <= 27, "{}: degree {deg}", m.name());
        }
    }
}

#[test]
fn degree_does_not_grow_with_size_for_fixed_degree_families() {
    for fam in Family::all_with_dims(&[1, 2, 3]) {
        if !fam.fixed_degree() {
            continue;
        }
        let d1 = fam.build_near(64, 1).graph().max_degree();
        let d2 = fam.build_near(1024, 1).graph().max_degree();
        // Tiny instances may not contain a max-degree vertex yet (e.g. a
        // side-2 pyramid has no fully-interior node), so allow saturation
        // up to the universal constant, but never unbounded growth.
        assert!(d2 <= 27, "{fam}: degree {d2}");
        assert!(d2 <= 2 * d1, "{fam}: degree grew {d1} -> {d2}");
    }
}

#[test]
fn processors_form_a_prefix_and_are_connected_in_graph() {
    for m in all_machines(150) {
        assert!(m.processors() <= m.node_count(), "{}", m.name());
        assert!(m.graph().is_connected(), "{}", m.name());
    }
}

#[test]
fn canonical_cuts_are_nontrivial_and_within_bounds() {
    for m in all_machines(150) {
        for (i, cut) in m.canonical_cuts().iter().enumerate() {
            assert!(cut.is_nontrivial(), "{} cut {i}", m.name());
            assert_eq!(cut.side.len(), m.node_count(), "{} cut {i}", m.name());
            let cap = cut.capacity(m.graph());
            assert!(cap >= 1, "{} cut {i}", m.name());
            assert!(cap <= m.graph().simple_edge_count(), "{} cut {i}", m.name());
        }
    }
}

#[test]
fn construction_is_deterministic() {
    for fam in Family::all_with_dims(&[2]) {
        let a = fam.build_near(120, 9);
        let b = fam.build_near(120, 9);
        assert_eq!(a.graph(), b.graph(), "{fam}");
        assert_eq!(a.processors(), b.processors(), "{fam}");
    }
}

#[test]
fn diameters_track_lambda_direction() {
    // Machines with λ = Θ(lg n) must have much smaller diameters than
    // same-size machines with λ = Θ(n).
    let array = Machine::linear_array(256);
    let tree = Machine::tree(7); // 255 nodes
    let d_array = diameter(array.graph());
    let d_tree = diameter(tree.graph());
    assert!(d_tree * 10 < d_array, "{d_tree} vs {d_array}");
}

#[test]
fn restricted_policies_restrict_to_processors() {
    for fam in [Family::Pyramid(2), Family::Multigrid(2), Family::Pyramid(3)] {
        let m = fam.build_near(256, 3);
        match m.route_policy() {
            RoutePolicy::RestrictToPrefix(p) => {
                assert_eq!(p, m.processors(), "{fam}");
                // The prefix must itself be connected (it's the base mesh).
                let ids: Vec<u32> = (0..p as u32).collect();
                let (sub, _) = m.graph().induced(&ids);
                assert!(sub.is_connected(), "{fam} base disconnected");
            }
            other => panic!("{fam}: unexpected policy {other:?}"),
        }
    }
}

#[test]
fn bit_machines_declare_bit_policies() {
    assert!(matches!(
        Machine::de_bruijn(5).route_policy(),
        RoutePolicy::DeBruijnBits { g: 5 }
    ));
    assert!(matches!(
        Machine::shuffle_exchange(5).route_policy(),
        RoutePolicy::ShuffleExchangeBits { g: 5 }
    ));
    assert!(matches!(
        Machine::mesh(2, 4).route_policy(),
        RoutePolicy::ShortestPath
    ));
}

#[test]
fn send_capacities_match_family_semantics() {
    let bus = Machine::global_bus(10);
    assert_eq!(bus.send_capacity(10), 1); // hub
    assert_eq!(bus.send_capacity(0), u32::MAX);
    let whc = Machine::weak_hypercube(4);
    for u in 0..16 {
        assert_eq!(whc.send_capacity(u), 1);
    }
    let mesh = Machine::mesh(2, 4);
    assert!(!mesh.has_node_capacities());
}

#[test]
fn family_display_and_topology_trait_agree() {
    for m in all_machines(100) {
        assert_eq!(Topology::family(&m), m.family());
        assert_eq!(Topology::processors(&m), m.processors());
        assert!(!m.family().id().is_empty());
    }
}
