//! A concrete machine instance: a built multigraph plus metadata.
//!
//! [`Machine`] couples a [`Family`] with a generated [`Multigraph`], the
//! processor count (auxiliary vertices like the global bus hub are not
//! processors), per-node send capacities (the "weak" machines), and
//! family-specific canonical cuts used by the flux bound.

use fcn_asymptotics::Asym;
use fcn_multigraph::{Cut, Multigraph, Traffic};
use serde::{Deserialize, Serialize};

use crate::family::Family;

/// How a machine prefers its packets routed.
///
/// The operational bandwidth `β` is defined over the *best* routing the
/// machine supports; naive BFS shortest paths are a poor scheme on several
/// families (pyramid/multigrid shortest paths funnel through the apex;
/// shuffle-exchange BFS trees concentrate on hub nodes), so those machines
/// declare the standard scheme that achieves their Θ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Randomized BFS shortest paths (fine for meshes, trees, butterflies).
    ShortestPath,
    /// Shortest paths restricted to the vertex-id prefix `0..p` (used by
    /// pyramid/multigrid: route across the base mesh, not over the apex).
    RestrictToPrefix(usize),
    /// de Bruijn bit-shift routing: shift in the destination's bits, one
    /// edge per bit.
    DeBruijnBits {
        /// Address width (the graph has `2^g` nodes).
        g: u32,
    },
    /// Shuffle-exchange bit-correction routing: alternate shuffle steps
    /// with exchange corrections.
    ShuffleExchangeBits {
        /// Address width (the graph has `2^g` nodes).
        g: u32,
    },
    /// X-Tree level-balanced routing: each pair crosses at a uniformly
    /// random tree level (climb, walk the level's sibling links, descend).
    /// BFS shortest paths push all far traffic over the root and saturate
    /// at Θ(1); spreading across levels realizes the Θ(lg n) of the level
    /// highways.
    XTreeLevels {
        /// Tree depth (levels are `0..=depth`).
        depth: u32,
    },
}

/// Per-node forwarding capacity per tick.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SendCapacity {
    /// A node may forward on all incident wires simultaneously (the default
    /// fixed-connection model: capacity lives on wires, not nodes).
    Unlimited,
    /// `cap[u]` packets per tick total across node `u`'s outgoing wires —
    /// models the global bus hub (1) and the weak hypercube (1 per node).
    PerNode(Vec<u32>),
}

/// A built fixed-connection network machine.
///
/// ```
/// use fcn_topology::Machine;
///
/// let m = Machine::de_bruijn(5);
/// assert_eq!(m.processors(), 32);
/// assert_eq!(m.beta_analytic().to_string(), "Θ(n * lg^-1 n)");
/// assert!(m.graph().max_degree() <= 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    pub(crate) family: Family,
    pub(crate) name: String,
    pub(crate) graph: Multigraph,
    /// The first `processors` node ids are processors; any further ids are
    /// auxiliary (bus hub). Traffic and emulation address processors only.
    pub(crate) processors: usize,
    pub(crate) send_capacity: SendCapacity,
    /// Family-specific good flux cuts over *all* nodes (witnesses for the β
    /// upper bound).
    pub(crate) canonical_cuts: Vec<Cut>,
    /// The routing scheme that realizes this machine's bandwidth.
    pub(crate) route_policy: RoutePolicy,
}

impl Machine {
    /// Build a machine from explicit parts — an escape hatch for custom
    /// topologies not covered by the generators. `family` controls which
    /// analytic β/λ the machine reports; pass the closest class.
    ///
    /// # Panics
    /// Panics (in debug builds) if the graph is disconnected or `processors`
    /// exceeds the node count.
    pub fn custom(
        family: Family,
        name: String,
        graph: Multigraph,
        processors: usize,
        send_capacity: SendCapacity,
        canonical_cuts: Vec<Cut>,
    ) -> Self {
        Machine::new(
            family,
            name,
            graph,
            processors,
            send_capacity,
            canonical_cuts,
        )
    }

    /// Construct directly (used by the generator modules).
    pub(crate) fn new(
        family: Family,
        name: String,
        graph: Multigraph,
        processors: usize,
        send_capacity: SendCapacity,
        canonical_cuts: Vec<Cut>,
    ) -> Self {
        debug_assert!(processors <= graph.node_count());
        debug_assert!(graph.is_connected(), "machine graphs must be connected");
        Machine {
            family,
            name,
            graph,
            processors,
            send_capacity,
            canonical_cuts,
            route_policy: RoutePolicy::ShortestPath,
        }
    }

    /// Set the routing scheme (builder style; used by generators whose
    /// bandwidth needs a non-BFS scheme).
    pub(crate) fn with_route_policy(mut self, policy: RoutePolicy) -> Self {
        self.route_policy = policy;
        self
    }

    /// The routing scheme that realizes this machine's bandwidth.
    pub fn route_policy(&self) -> RoutePolicy {
        self.route_policy
    }

    /// The machine family this instance belongs to.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Human-readable instance name, e.g. `mesh2(8x8)`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interconnection multigraph.
    pub fn graph(&self) -> &Multigraph {
        &self.graph
    }

    /// Number of processors (traffic endpoints).
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Total vertices including auxiliary ones.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Per-tick forwarding capacity of node `u`.
    pub fn send_capacity(&self, u: fcn_multigraph::NodeId) -> u32 {
        match &self.send_capacity {
            SendCapacity::Unlimited => u32::MAX,
            SendCapacity::PerNode(caps) => caps[u as usize],
        }
    }

    /// Whether any node has a finite send capacity.
    pub fn has_node_capacities(&self) -> bool {
        matches!(self.send_capacity, SendCapacity::PerNode(_))
    }

    /// Family-specific cut witnesses (β upper bounds), over all nodes.
    pub fn canonical_cuts(&self) -> &[Cut] {
        &self.canonical_cuts
    }

    /// The symmetric traffic distribution over this machine's processors —
    /// the distribution under which the paper's `β` is defined.
    pub fn symmetric_traffic(&self) -> Traffic {
        Traffic::symmetric(self.processors)
    }

    /// Analytic `β` growth class of the family.
    pub fn beta_analytic(&self) -> Asym {
        self.family.beta()
    }

    /// Analytic `λ` growth class of the family.
    pub fn lambda_analytic(&self) -> Asym {
        self.family.lambda()
    }

    /// Analytic `β` evaluated at this instance's processor count.
    pub fn beta_at_size(&self) -> f64 {
        self.family.beta().eval(self.processors as f64)
    }

    /// Analytic `λ` evaluated at this instance's processor count.
    pub fn lambda_at_size(&self) -> f64 {
        self.family.lambda().eval(self.processors as f64)
    }
}
