#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-topology
//!
//! Generators and analytic properties for the fixed-connection network
//! families of Kruskal & Rappoport (SPAA'94), Table 4: linear arrays, rings,
//! the global bus, trees, weak parallel-prefix networks, X-Trees,
//! k-dimensional meshes / tori / X-Grids / meshes-of-trees / multigrids /
//! pyramids, butterflies, cube-connected cycles, shuffle-exchange and de
//! Bruijn graphs, multibutterflies, random-regular expanders, and the weak
//! hypercube.
//!
//! Every family knows its closed-form bandwidth `β(n)` and distance
//! parameter `λ(n)` ([`Family`]); every instance carries its multigraph,
//! processor count, node send capacities (for the "weak" machines and the
//! bus) and canonical flux cuts ([`Machine`]).
//!
//! Node numbering conventions (relied on throughout the workspace):
//! processors come first and are geometrically contiguous — an id-prefix cut
//! at `n/2` is a meaningful half/half split for every family.

pub mod family;
pub mod hierarchical;
pub mod hypercubic;
pub mod labels;
pub mod linear;
pub mod machine;
pub mod mesh;
pub mod random_nets;
pub mod registry;
pub mod trees;

pub use family::Family;
pub use labels::{all_labels, node_label, to_labeled_dot};
pub use machine::{Machine, RoutePolicy, SendCapacity};

/// Minimal machine-shaped interface: anything that can report a family and a
/// processor count. `Machine` is the canonical implementor.
pub trait Topology {
    /// The machine's family.
    fn family(&self) -> Family;
    /// The machine's processor count.
    fn processors(&self) -> usize;
}

impl Topology for Machine {
    fn family(&self) -> Family {
        Machine::family(self)
    }
    fn processors(&self) -> usize {
        Machine::processors(self)
    }
}

impl Machine {
    /// Linear array on `n` processors.
    pub fn linear_array(n: usize) -> Machine {
        linear::linear_array(n)
    }
    /// Ring on `n` processors.
    pub fn ring(n: usize) -> Machine {
        linear::ring(n)
    }
    /// Global bus over `n` processors (hub is an auxiliary vertex).
    pub fn global_bus(n: usize) -> Machine {
        linear::global_bus(n)
    }
    /// Complete binary tree of the given depth.
    pub fn tree(depth: u32) -> Machine {
        trees::tree(depth)
    }
    /// Weak parallel-prefix network of the given depth.
    pub fn weak_ppn(depth: u32) -> Machine {
        trees::weak_ppn(depth)
    }
    /// X-Tree of the given depth.
    pub fn xtree(depth: u32) -> Machine {
        trees::xtree(depth)
    }
    /// k-dimensional mesh with side length `side`.
    pub fn mesh(k: u8, side: usize) -> Machine {
        mesh::mesh(k, side)
    }
    /// k-dimensional torus with side length `side`.
    pub fn torus(k: u8, side: usize) -> Machine {
        mesh::torus(k, side)
    }
    /// k-dimensional X-Grid with side length `side`.
    pub fn xgrid(k: u8, side: usize) -> Machine {
        mesh::xgrid(k, side)
    }
    /// k-dimensional mesh of trees over a `side^k` grid.
    pub fn mesh_of_trees(k: u8, side: usize) -> Machine {
        hierarchical::mesh_of_trees(k, side)
    }
    /// k-dimensional multigrid over a `side^k` base grid.
    pub fn multigrid(k: u8, side: usize) -> Machine {
        hierarchical::multigrid(k, side)
    }
    /// k-dimensional pyramid over a `side^k` base grid.
    pub fn pyramid(k: u8, side: usize) -> Machine {
        hierarchical::pyramid(k, side)
    }
    /// Butterfly of dimension `g`.
    pub fn butterfly(g: u32) -> Machine {
        hypercubic::butterfly(g)
    }
    /// Cube-connected cycles of dimension `g`.
    pub fn ccc(g: u32) -> Machine {
        hypercubic::cube_connected_cycles(g)
    }
    /// Shuffle-exchange of dimension `g`.
    pub fn shuffle_exchange(g: u32) -> Machine {
        hypercubic::shuffle_exchange(g)
    }
    /// Binary de Bruijn graph of dimension `g` (`2^g` processors).
    pub fn de_bruijn(g: u32) -> Machine {
        hypercubic::de_bruijn(g)
    }
    /// Multibutterfly of dimension `g` with splitter degree `d`.
    pub fn multibutterfly(g: u32, d: u32, seed: u64) -> Machine {
        random_nets::multibutterfly(g, d, seed)
    }
    /// Random near-`d`-regular expander on `n` nodes.
    pub fn expander(n: usize, d: u32, seed: u64) -> Machine {
        random_nets::expander(n, d, seed)
    }
    /// Weak hypercube of dimension `g` (unit per-node send capacity).
    pub fn weak_hypercube(g: u32) -> Machine {
        hypercubic::weak_hypercube(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_with_families() {
        assert_eq!(Machine::mesh(2, 4).family(), Family::Mesh(2));
        assert_eq!(Machine::de_bruijn(4).family(), Family::DeBruijn);
        assert_eq!(Machine::global_bus(8).family(), Family::GlobalBus);
    }

    #[test]
    fn every_family_builds_a_connected_machine() {
        for fam in Family::all_with_dims(&[1, 2, 3]) {
            let m = fam.build_near(100, 7);
            assert!(m.graph().is_connected(), "{fam}");
            assert!(m.processors() >= 4, "{fam}");
            for cut in m.canonical_cuts() {
                assert!(cut.is_nontrivial(), "{fam} trivial canonical cut");
            }
        }
    }

    #[test]
    fn analytic_beta_evaluates_positively() {
        for fam in Family::all_with_dims(&[1, 2, 3]) {
            let m = fam.build_near(64, 3);
            assert!(m.beta_at_size() > 0.0, "{fam}");
            assert!(m.lambda_at_size() > 0.0, "{fam}");
        }
    }
}
