//! The machine families of Table 4, with their analytic `β` and `λ`.
//!
//! A [`Family`] identifies one of the paper's fixed-connection network
//! families and knows its closed-form communication bandwidth `β(n)` and
//! distance parameter `λ(n)` (both as [`Asym`] growth classes in the number
//! of processors `n`). Dimensional families (`Mesh`, `Pyramid`, ...) carry
//! their dimension `k`, which enters the exponents.
//!
//! The paper notes "without proof that most network machines studied in the
//! literature, including the Tree, X-Tree, Mesh, Butterfly, Shuffle
//! Exchange, de Bruijn graph, are bottleneck-free and have λ proportional to
//! diameter"; [`Family::bottleneck_free`] records that claim (audited
//! empirically by `fcn-bandwidth::bottleneck`).

use std::fmt;

use fcn_asymptotics::{Asym, Rational};
use serde::{Deserialize, Serialize};

/// One of the 19 machine families in the reproduction (Table 4 plus the
/// Ring, which the paper subsumes under the linear-array class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// 1-d array; β = Θ(1), λ = Θ(n).
    LinearArray,
    /// 1-d torus; same class as the linear array.
    Ring,
    /// Shared bus: one transmission per tick heard by all; β = Θ(1), λ = Θ(1).
    GlobalBus,
    /// Complete binary tree; β = Θ(1), λ = Θ(lg n).
    Tree,
    /// Weak parallel-prefix network (up/down tree pair); β = Θ(1), λ = Θ(lg n).
    WeakPpn,
    /// Complete binary tree plus same-level sibling links; β = Θ(lg n), λ = Θ(lg n).
    XTree,
    /// k-dimensional mesh; β = Θ(n^{(k-1)/k}), λ = Θ(n^{1/k}).
    Mesh(u8),
    /// k-dimensional torus; same class as the mesh.
    Torus(u8),
    /// k-dimensional mesh with full Moore (diagonal) neighborhoods; mesh class.
    XGrid(u8),
    /// k-dimensional mesh of trees; β = Θ(n^{(k-1)/k}), λ = Θ(lg n).
    MeshOfTrees(u8),
    /// k-dimensional multigrid (mesh hierarchy, one up-link per even node).
    Multigrid(u8),
    /// k-dimensional pyramid (mesh hierarchy, 2^k children per apex node).
    Pyramid(u8),
    /// Butterfly; β = Θ(n/lg n), λ = Θ(lg n).
    Butterfly,
    /// Cube-connected cycles; butterfly class.
    Ccc,
    /// Shuffle-exchange; butterfly class.
    ShuffleExchange,
    /// Binary de Bruijn graph; butterfly class.
    DeBruijn,
    /// Multibutterfly (randomized splitters); butterfly class.
    Multibutterfly,
    /// Random d-regular expander; β = Θ(n/lg n), λ = Θ(lg n).
    Expander,
    /// Weak hypercube: lg n wires per node but only one usable per tick;
    /// butterfly class.
    WeakHypercube,
}

impl Family {
    /// All families at their default dimensions (meshes at k ∈ {1,2,3} are
    /// produced by [`Family::with_dims`]).
    pub fn all() -> Vec<Family> {
        use Family::*;
        vec![
            LinearArray,
            Ring,
            GlobalBus,
            Tree,
            WeakPpn,
            XTree,
            Mesh(2),
            Torus(2),
            XGrid(2),
            MeshOfTrees(2),
            Multigrid(2),
            Pyramid(2),
            Butterfly,
            Ccc,
            ShuffleExchange,
            DeBruijn,
            Multibutterfly,
            Expander,
            WeakHypercube,
        ]
    }

    /// The dimensional families instantiated over the given dimensions,
    /// plus all non-dimensional families.
    pub fn all_with_dims(dims: &[u8]) -> Vec<Family> {
        use Family::*;
        let mut out = vec![LinearArray, Ring, GlobalBus, Tree, WeakPpn, XTree];
        for &k in dims {
            out.extend([
                Mesh(k),
                Torus(k),
                XGrid(k),
                MeshOfTrees(k),
                Multigrid(k),
                Pyramid(k),
            ]);
        }
        out.extend([
            Butterfly,
            Ccc,
            ShuffleExchange,
            DeBruijn,
            Multibutterfly,
            Expander,
            WeakHypercube,
        ]);
        out
    }

    /// Dimension parameter for dimensional families.
    pub fn dimension(&self) -> Option<u8> {
        use Family::*;
        match self {
            Mesh(k) | Torus(k) | XGrid(k) | MeshOfTrees(k) | Multigrid(k) | Pyramid(k) => Some(*k),
            _ => None,
        }
    }

    /// Analytic communication bandwidth `β(n)` from Table 4, as a growth
    /// class in the processor count `n`.
    ///
    /// One refinement over the paper's table: for `k = 1` the multigrid and
    /// pyramid hierarchies themselves contribute Θ(lg n) cut capacity (one
    /// express edge per level crosses any half cut), which dominates the
    /// base line's Θ(1) — so `Multigrid(1)`/`Pyramid(1)` are X-Tree class,
    /// `β = Θ(lg n)`, as our router measurements confirm. For `k ≥ 2` the
    /// base mesh's `n^{(k-1)/k}` dominates `lg n` and the paper's entry
    /// stands.
    pub fn beta(&self) -> Asym {
        use Family::*;
        match self {
            LinearArray | Ring | GlobalBus | Tree | WeakPpn => Asym::one(),
            XTree | Multigrid(1) | Pyramid(1) => Asym::lg(),
            Mesh(k) | Torus(k) | XGrid(k) | MeshOfTrees(k) | Multigrid(k) | Pyramid(k) => {
                let k = *k as i64;
                Asym::n_pow(k - 1, k)
            }
            Butterfly | Ccc | ShuffleExchange | DeBruijn | Multibutterfly | Expander
            | WeakHypercube => Asym::n() / Asym::lg(),
        }
    }

    /// Analytic distance parameter `λ(n)` from Table 4 (proportional to the
    /// diameter for these machines); this is also the minimal guest
    /// computation time scale `Λ(G)` in the Efficient Emulation Theorem.
    pub fn lambda(&self) -> Asym {
        use Family::*;
        match self {
            LinearArray | Ring => Asym::n(),
            GlobalBus => Asym::one(),
            Tree | WeakPpn | XTree => Asym::lg(),
            Mesh(k) | Torus(k) | XGrid(k) => Asym::n_pow(1, *k as i64),
            MeshOfTrees(_) | Multigrid(_) | Pyramid(_) => Asym::lg(),
            Butterfly | Ccc | ShuffleExchange | DeBruijn | Multibutterfly | Expander
            | WeakHypercube => Asym::lg(),
        }
    }

    /// Whether the family is fixed-degree (the Efficient Emulation Theorem's
    /// guest premise). The weak hypercube has degree `lg n` but unit node
    /// capacity; the global bus's hub is an auxiliary medium, not a
    /// processor.
    pub fn fixed_degree(&self) -> bool {
        !matches!(self, Family::WeakHypercube | Family::GlobalBus)
    }

    /// The paper's (unproven) claim that the classical machines are
    /// bottleneck-free; audited empirically in `fcn-bandwidth`.
    pub fn bottleneck_free(&self) -> bool {
        true
    }

    /// β as the exponent pair `(e, d, g)` of the *host-side* solve variable:
    /// `β_H(m) = m^e (lg m)^d (lg lg m)^g` with an exact rational `e`.
    pub fn beta_exponents(&self) -> (Rational, Rational, Rational) {
        let b = self.beta();
        (b.pow_n, b.pow_lg, b.pow_lglg)
    }

    /// Short stable identifier, e.g. `mesh2`, `xtree`, `de_bruijn`.
    pub fn id(&self) -> String {
        use Family::*;
        match self {
            LinearArray => "linear_array".into(),
            Ring => "ring".into(),
            GlobalBus => "global_bus".into(),
            Tree => "tree".into(),
            WeakPpn => "weak_ppn".into(),
            XTree => "xtree".into(),
            Mesh(k) => format!("mesh{k}"),
            Torus(k) => format!("torus{k}"),
            XGrid(k) => format!("xgrid{k}"),
            MeshOfTrees(k) => format!("mesh_of_trees{k}"),
            Multigrid(k) => format!("multigrid{k}"),
            Pyramid(k) => format!("pyramid{k}"),
            Butterfly => "butterfly".into(),
            Ccc => "ccc".into(),
            ShuffleExchange => "shuffle_exchange".into(),
            DeBruijn => "de_bruijn".into(),
            Multibutterfly => "multibutterfly".into(),
            Expander => "expander".into(),
            WeakHypercube => "weak_hypercube".into(),
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_matches_table4_classes() {
        assert!(Family::LinearArray.beta().is_constant());
        assert!(Family::Tree.beta().is_constant());
        assert!(Family::XTree.beta().same_class(&Asym::lg()));
        assert!(Family::Mesh(2).beta().same_class(&Asym::n_pow(1, 2)));
        assert!(Family::Mesh(3).beta().same_class(&Asym::n_pow(2, 3)));
        assert!(Family::Pyramid(2).beta().same_class(&Asym::n_pow(1, 2)));
        assert!(Family::DeBruijn
            .beta()
            .same_class(&(Asym::n() / Asym::lg())));
        assert!(Family::WeakHypercube
            .beta()
            .same_class(&(Asym::n() / Asym::lg())));
    }

    #[test]
    fn lambda_matches_table4_classes() {
        assert!(Family::LinearArray.lambda().same_class(&Asym::n()));
        assert!(Family::GlobalBus.lambda().is_constant());
        assert!(Family::Mesh(3).lambda().same_class(&Asym::n_pow(1, 3)));
        assert!(Family::MeshOfTrees(2).lambda().same_class(&Asym::lg()));
        assert!(Family::Butterfly.lambda().same_class(&Asym::lg()));
    }

    #[test]
    fn beta_times_inverse_lambda_sanity() {
        // For mesh-class machines β·λ = Θ(n) (edge capacity over distance).
        for k in 1..=4u8 {
            let prod = Family::Mesh(k).beta() * Family::Mesh(k).lambda();
            assert!(prod.same_class(&Asym::n()), "k = {k}");
        }
        // Butterfly class too: (n/lg n)·lg n = n.
        let prod = Family::Ccc.beta() * Family::Ccc.lambda();
        assert!(prod.same_class(&Asym::n()));
    }

    #[test]
    fn ids_are_unique() {
        let fams = Family::all_with_dims(&[1, 2, 3]);
        let mut ids: Vec<String> = fams.iter().map(|f| f.id()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn dimension_accessor() {
        assert_eq!(Family::Mesh(3).dimension(), Some(3));
        assert_eq!(Family::Butterfly.dimension(), None);
    }

    #[test]
    fn fixed_degree_flags() {
        assert!(Family::Mesh(2).fixed_degree());
        assert!(Family::DeBruijn.fixed_degree());
        assert!(!Family::WeakHypercube.fixed_degree());
        assert!(!Family::GlobalBus.fixed_degree());
    }
}
