//! Size-targeted instance construction for sweeps.
//!
//! The Table 4 experiment sweeps every family over growing sizes. Families
//! have different natural size grids (powers of two, `side^k`, `(g+1)·2^g`,
//! ...), so [`Family::build_near`] picks the legal instance closest to a
//! requested processor count.

use crate::family::Family;
use crate::machine::Machine;
use crate::{hierarchical, hypercubic, linear, mesh, random_nets, trees};

impl Family {
    /// Build an instance of this family whose processor count is as close
    /// as possible to `target`. `seed` feeds the randomized families
    /// (expander, multibutterfly); deterministic families ignore it.
    pub fn build_near(&self, target: usize, seed: u64) -> Machine {
        use Family::*;
        let target = target.max(4);
        match self {
            LinearArray => linear::linear_array(target),
            Ring => linear::ring(target.max(3)),
            GlobalBus => linear::global_bus(target),
            Tree => trees::tree(depth_near(target)),
            WeakPpn => trees::weak_ppn(depth_near(target * 2 / 3)),
            XTree => trees::xtree(depth_near(target)),
            Mesh(k) => mesh::mesh(*k, side_near(target, *k, 2)),
            Torus(k) => mesh::torus(*k, side_near(target, *k, 3)),
            XGrid(k) => mesh::xgrid(*k, side_near(target, *k, 2)),
            MeshOfTrees(k) => {
                // n ≈ (1 + k) · side^k.
                let base = (target / (1 + *k as usize)).max(2);
                hierarchical::mesh_of_trees(*k, pow2_side_near(base, *k))
            }
            Multigrid(k) => {
                // n ≈ side^k / (1 - 2^{-k}).
                let shrink = 1.0 - 0.5f64.powi(*k as i32);
                let base = ((target as f64) * shrink) as usize;
                hierarchical::multigrid(*k, pow2_side_near(base.max(2), *k))
            }
            Pyramid(k) => {
                let shrink = 1.0 - 0.5f64.powi(*k as i32);
                let base = ((target as f64) * shrink) as usize;
                hierarchical::pyramid(*k, pow2_side_near(base.max(2), *k))
            }
            Butterfly => hypercubic::butterfly(butterfly_dim_near(target)),
            Ccc => hypercubic::cube_connected_cycles(ccc_dim_near(target)),
            ShuffleExchange => hypercubic::shuffle_exchange(lg_near(target).max(2)),
            DeBruijn => hypercubic::de_bruijn(lg_near(target).max(2)),
            Multibutterfly => {
                random_nets::multibutterfly(butterfly_dim_near(target).max(2), 2, seed)
            }
            Expander => random_nets::expander(target, 4, seed),
            WeakHypercube => hypercubic::weak_hypercube(lg_near(target).max(1)),
        }
    }
}

/// Tree depth with `2^{d+1} - 1` closest to `target`.
fn depth_near(target: usize) -> u32 {
    let mut best = (1u32, usize::MAX);
    for d in 1..=24 {
        let n = (1usize << (d + 1)) - 1;
        let err = n.abs_diff(target);
        if err < best.1 {
            best = (d, err);
        }
    }
    best.0
}

/// Side with `side^k` closest to `target` (at least `min_side`).
fn side_near(target: usize, k: u8, min_side: usize) -> usize {
    let s = (target as f64).powf(1.0 / k as f64).round() as usize;
    s.max(min_side)
}

/// Power-of-two side with `side^k` closest to `target` on a log scale (the
/// size grids of hierarchical machines are geometric, so relative error is
/// the right metric).
fn pow2_side_near(target: usize, k: u8) -> usize {
    let ideal = (target as f64).powf(1.0 / k as f64);
    let lo = (ideal.log2().floor() as u32).max(1);
    let cands = [1usize << lo, 1usize << (lo + 1)];
    let pick = |s: usize| ((s.pow(k as u32) as f64).ln() - (target as f64).ln()).abs();
    if pick(cands[0]) <= pick(cands[1]) {
        cands[0]
    } else {
        cands[1]
    }
}

/// `g` with `(g+1)·2^g` closest to `target`.
fn butterfly_dim_near(target: usize) -> u32 {
    let mut best = (1u32, usize::MAX);
    for g in 1..=22 {
        let n = (g as usize + 1) << g;
        let err = n.abs_diff(target);
        if err < best.1 {
            best = (g, err);
        }
    }
    best.0
}

/// `g` with `g·2^g` closest to `target` (CCC needs `g >= 2`).
fn ccc_dim_near(target: usize) -> u32 {
    let mut best = (2u32, usize::MAX);
    for g in 2..=22 {
        let n = (g as usize) << g;
        let err = n.abs_diff(target);
        if err < best.1 {
            best = (g, err);
        }
    }
    best.0
}

/// `g` with `2^g` closest to `target`.
fn lg_near(target: usize) -> u32 {
    let lo = (target.max(2) as f64).log2().floor() as u32;
    if target.abs_diff(1 << lo) <= target.abs_diff(1 << (lo + 1)) {
        lo
    } else {
        lo + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_near_hits_within_factor_two() {
        for fam in Family::all_with_dims(&[1, 2, 3]) {
            for target in [64usize, 256, 1024] {
                let m = fam.build_near(target, 42);
                let n = m.processors();
                // Hierarchical families have coarse geometric size grids
                // (e.g. 3-d mesh-of-trees sizes jump 20 -> 208), so the
                // closest legal instance can be ~4x off a small target.
                assert!(
                    n >= target / 4 && n <= target * 4,
                    "{fam}: target {target} got {n}"
                );
                assert!(m.graph().is_connected(), "{fam} disconnected");
            }
        }
    }

    #[test]
    fn helper_grids() {
        assert_eq!(depth_near(31), 4);
        assert_eq!(side_near(64, 2, 2), 8);
        assert_eq!(side_near(64, 3, 2), 4);
        assert_eq!(pow2_side_near(60, 2), 8);
        assert_eq!(butterfly_dim_near(4 * 8), 3);
        assert_eq!(ccc_dim_near(3 * 8), 3);
        assert_eq!(lg_near(1000), 10);
    }

    #[test]
    fn dimensional_families_keep_dimension() {
        let m = Family::Mesh(3).build_near(512, 0);
        assert_eq!(m.family(), Family::Mesh(3));
        assert_eq!(m.processors(), 8 * 8 * 8);
    }
}
