//! Linear arrays, rings, and the global bus.

use fcn_multigraph::{Cut, MultigraphBuilder, NodeId};

use crate::family::Family;
use crate::machine::{Machine, SendCapacity};

/// Linear array on `n` processors: `0 - 1 - ... - n-1`.
///
/// β = Θ(1) (the middle edge is a bottleneck), λ = Θ(n).
pub fn linear_array(n: usize) -> Machine {
    assert!(n >= 2, "linear array needs at least 2 processors");
    let mut b = MultigraphBuilder::new(n);
    for i in 0..n as NodeId - 1 {
        b.add_edge(i, i + 1);
    }
    Machine::new(
        Family::LinearArray,
        format!("linear_array({n})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::prefix(n, n / 2)],
    )
}

/// Ring (1-d torus) on `n` processors.
pub fn ring(n: usize) -> Machine {
    assert!(n >= 3, "ring needs at least 3 processors");
    let mut b = MultigraphBuilder::new(n);
    for i in 0..n as NodeId {
        b.add_edge(i, (i + 1) % n as NodeId);
    }
    Machine::new(
        Family::Ring,
        format!("ring({n})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::prefix(n, n / 2)],
    )
}

/// Global bus on `n` processors: a shared medium carrying one message per
/// tick, modeled as a star whose hub (the auxiliary vertex `n`) has send
/// capacity 1.
///
/// β = Θ(1) (one delivery per tick), λ = Θ(1) (two hops).
pub fn global_bus(n: usize) -> Machine {
    assert!(n >= 2, "bus needs at least 2 processors");
    let hub = n as NodeId;
    let mut b = MultigraphBuilder::new(n + 1);
    for i in 0..n as NodeId {
        b.add_edge(i, hub);
    }
    let mut caps = vec![u32::MAX; n + 1];
    caps[n] = 1;
    Machine::new(
        Family::GlobalBus,
        format!("global_bus({n})"),
        b.build(),
        n,
        SendCapacity::PerNode(caps),
        // A half/half processor split has huge wire capacity; the bus
        // bottleneck is the hub's node capacity, which the flux bound can't
        // see — the router measurement certifies β = Θ(1) instead.
        vec![Cut::prefix(n + 1, n / 2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::diameter;

    #[test]
    fn linear_array_shape() {
        let m = linear_array(10);
        assert_eq!(m.processors(), 10);
        assert_eq!(m.graph().simple_edge_count(), 9);
        assert_eq!(m.graph().max_degree(), 2);
        assert_eq!(diameter(m.graph()), 9);
    }

    #[test]
    fn ring_shape() {
        let m = ring(10);
        assert_eq!(m.graph().simple_edge_count(), 10);
        assert_eq!(diameter(m.graph()), 5);
        for u in 0..10 {
            assert_eq!(m.graph().degree(u), 2);
        }
    }

    #[test]
    fn bus_is_a_capacitated_star() {
        let m = global_bus(8);
        assert_eq!(m.processors(), 8);
        assert_eq!(m.node_count(), 9);
        assert_eq!(m.graph().degree(8), 8);
        assert_eq!(m.send_capacity(8), 1);
        assert_eq!(m.send_capacity(0), u32::MAX);
        assert!(m.has_node_capacities());
        assert_eq!(diameter(m.graph()), 2);
    }

    #[test]
    fn canonical_cut_on_array_is_the_middle_edge() {
        let m = linear_array(16);
        let cut = &m.canonical_cuts()[0];
        assert_eq!(cut.capacity(m.graph()), 1);
    }
}
