//! Hierarchical mesh machines: mesh-of-trees, multigrid, and pyramid.
//!
//! All three overlay logarithmic-depth structure on a `side^k` base grid
//! (`side` a power of two), which brings `λ` down to Θ(lg n) while the base
//! grid keeps `β = Θ(n^{(k-1)/k})`. Numbering puts base-grid leaves first
//! (row-major, coordinate 0 most significant), auxiliary/tree/coarse nodes
//! after, so processor-prefix traffic splits remain geometric.

use fcn_multigraph::{Cut, MultigraphBuilder, NodeId};

use crate::family::Family;
use crate::machine::{Machine, RoutePolicy, SendCapacity};
use crate::mesh::{coords_of, id_of};

fn assert_power_of_two(side: usize, what: &str) {
    assert!(
        side >= 2 && side.is_power_of_two(),
        "{what} side must be a power of two >= 2, got {side}"
    );
}

/// k-dimensional mesh of trees on a `side^k` grid: one complete binary tree
/// per axis-aligned line of grid points, per dimension; internal tree nodes
/// are distinct vertices.
///
/// Nodes: `side^k + k · side^{k-1} · (side-1)`. β = Θ(n^{(k-1)/k}),
/// λ = Θ(lg n).
pub fn mesh_of_trees(k: u8, side: usize) -> Machine {
    assert!(k >= 1, "mesh-of-trees needs k >= 1");
    assert_power_of_two(side, "mesh-of-trees");
    let kk = k as usize;
    let leaves = side.pow(k as u32);
    let lines_per_dim = side.pow(k as u32 - 1);
    let internal_per_line = side - 1;
    let n = leaves + kk * lines_per_dim * internal_per_line;
    let mut b = MultigraphBuilder::new(n);

    // Internal node id for (dim d, line L, 1-based heap position h in
    // [1, side-1]).
    let internal_id = |d: usize, line: usize, h: usize| -> NodeId {
        (leaves + d * lines_per_dim * internal_per_line + line * internal_per_line + (h - 1))
            as NodeId
    };
    // Leaf id for (dim d, line L, position p): line coordinates with `p`
    // inserted at dimension d.
    let leaf_id = |d: usize, line: usize, p: usize| -> NodeId {
        let lc = coords_of(line, kk - 1, side.max(2)); // line index in side^{k-1}
        let mut c = Vec::with_capacity(kk);
        c.extend_from_slice(&lc[..d]);
        c.push(p);
        c.extend_from_slice(&lc[d..]);
        id_of(&c, side) as NodeId
    };

    for d in 0..kk {
        for line in 0..lines_per_dim {
            // Segment-tree edges: heap node h has children 2h, 2h+1; child
            // ids >= side refer to leaves (position = child - side).
            for h in 1..side {
                for child in [2 * h, 2 * h + 1] {
                    let child_vertex = if child < side {
                        internal_id(d, line, child)
                    } else {
                        leaf_id(d, line, child - side)
                    };
                    b.add_edge(internal_id(d, line, h), child_vertex);
                }
            }
        }
    }

    // Canonical dim-0 half cut: leaves with x0 < side/2; internal nodes of
    // dim-0 trees whose segment lies inside [0, side/2); internal nodes of
    // other dims' trees whose line has x0 < side/2.
    let mut members: Vec<NodeId> = (0..leaves)
        .filter(|&id| coords_of(id, kk, side)[0] < side / 2)
        .map(|id| id as NodeId)
        .collect();
    for line in 0..lines_per_dim {
        for h in 1..side {
            let level = h.ilog2() as usize;
            let seg = side >> level;
            let lo = (h - (1 << level)) * seg;
            if lo + seg <= side / 2 {
                members.push(internal_id(0, line, h));
            }
        }
    }
    for d in 1..kk {
        for line in 0..lines_per_dim {
            let lc = coords_of(line, kk - 1, side);
            // After removing dimension d (> 0), coordinate 0 stays at index 0.
            if lc[0] < side / 2 {
                for h in 1..side {
                    members.push(internal_id(d, line, h));
                }
            }
        }
    }

    Machine::new(
        Family::MeshOfTrees(k),
        format!("mesh_of_trees{k}(side={side})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &members)],
    )
}

/// Vertex counts and id offsets of the mesh-hierarchy levels
/// (`side, side/2, ..., 1`).
fn level_offsets(k: usize, side: usize) -> (Vec<usize>, Vec<usize>, usize) {
    let mut sides = Vec::new();
    let mut offsets = Vec::new();
    let mut total = 0usize;
    let mut s = side;
    loop {
        sides.push(s);
        offsets.push(total);
        total += s.pow(k as u32);
        if s == 1 {
            break;
        }
        s /= 2;
    }
    (sides, offsets, total)
}

fn add_level_mesh(b: &mut MultigraphBuilder, k: usize, s: usize, off: usize) {
    for id in 0..s.pow(k as u32) {
        let c = coords_of(id, k, s);
        for d in 0..k {
            if c[d] + 1 < s {
                let mut c2 = c.clone();
                c2[d] += 1;
                b.add_edge((off + id) as NodeId, (off + id_of(&c2, s)) as NodeId);
            }
        }
    }
}

/// Half-space canonical cut for the mesh hierarchies: every level's nodes
/// with `x_0 < side_ℓ/2`.
fn hierarchy_half_cut(k: usize, sides: &[usize], offsets: &[usize], n: usize) -> Cut {
    let mut members = Vec::new();
    for (&s, &off) in sides.iter().zip(offsets) {
        for id in 0..s.pow(k as u32) {
            if coords_of(id, k, s)[0] < s / 2 {
                members.push((off + id) as NodeId);
            }
        }
    }
    Cut::from_members(n, &members)
}

/// k-dimensional multigrid: a hierarchy of k-d meshes of sides
/// `side, side/2, ..., 1`; each coarse node `(ℓ+1, c)` links to the fine
/// node `(ℓ, 2c)` at the same spatial position. Degree ≤ 2k + 2.
///
/// β = Θ(n^{(k-1)/k}) (finest level dominates the half cut), λ = Θ(lg n)
/// (climb to the apex and back down).
pub fn multigrid(k: u8, side: usize) -> Machine {
    assert!(k >= 1, "multigrid needs k >= 1");
    assert_power_of_two(side, "multigrid");
    let kk = k as usize;
    let (sides, offsets, n) = level_offsets(kk, side);
    let mut b = MultigraphBuilder::new(n);
    for (l, (&s, &off)) in sides.iter().zip(&offsets).enumerate() {
        add_level_mesh(&mut b, kk, s, off);
        if l + 1 < sides.len() {
            let (cs, coff) = (sides[l + 1], offsets[l + 1]);
            for cid in 0..cs.pow(k as u32) {
                let cc = coords_of(cid, kk, cs);
                let fine: Vec<usize> = cc.iter().map(|&x| 2 * x).collect();
                b.add_edge((coff + cid) as NodeId, (off + id_of(&fine, s)) as NodeId);
            }
        }
    }
    let cut = hierarchy_half_cut(kk, &sides, &offsets, n);
    let base = side.pow(k as u32); // base-grid nodes are the processors-first prefix
    Machine::new(
        Family::Multigrid(k),
        format!("multigrid{k}(side={side})"),
        b.build(),
        base,
        SendCapacity::Unlimited,
        vec![cut],
    )
    // For k >= 2, shortest paths funnel through the coarse levels and
    // congest the apex; the scheme achieving Θ(n^{(k-1)/k}) routes across
    // the base mesh. For k = 1 the express levels *are* the Θ(lg n)
    // bandwidth, so BFS (which uses them) stays.
    .with_route_policy(if k >= 2 {
        RoutePolicy::RestrictToPrefix(base)
    } else {
        RoutePolicy::ShortestPath
    })
}

/// k-dimensional pyramid: same level structure as the multigrid, but each
/// coarse node links to all `2^k` fine nodes of its block. Degree ≤
/// `2k + 2^k + 1`.
pub fn pyramid(k: u8, side: usize) -> Machine {
    assert!(k >= 1, "pyramid needs k >= 1");
    assert_power_of_two(side, "pyramid");
    let kk = k as usize;
    let (sides, offsets, n) = level_offsets(kk, side);
    let mut b = MultigraphBuilder::new(n);
    for (l, (&s, &off)) in sides.iter().zip(&offsets).enumerate() {
        add_level_mesh(&mut b, kk, s, off);
        if l + 1 < sides.len() {
            let (cs, coff) = (sides[l + 1], offsets[l + 1]);
            for cid in 0..cs.pow(k as u32) {
                let cc = coords_of(cid, kk, cs);
                for delta in 0..(1usize << kk) {
                    let fine: Vec<usize> = cc
                        .iter()
                        .enumerate()
                        .map(|(d, &x)| 2 * x + ((delta >> d) & 1))
                        .collect();
                    b.add_edge((coff + cid) as NodeId, (off + id_of(&fine, s)) as NodeId);
                }
            }
        }
    }
    let cut = hierarchy_half_cut(kk, &sides, &offsets, n);
    let base = side.pow(k as u32);
    Machine::new(
        Family::Pyramid(k),
        format!("pyramid{k}(side={side})"),
        b.build(),
        base,
        SendCapacity::Unlimited,
        vec![cut],
    )
    .with_route_policy(if k >= 2 {
        RoutePolicy::RestrictToPrefix(base)
    } else {
        RoutePolicy::ShortestPath
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::diameter;

    #[test]
    fn mot2_counts() {
        let m = mesh_of_trees(2, 4);
        // 16 leaves + 2 dims * 4 lines * 3 internal = 40.
        assert_eq!(m.node_count(), 40);
        assert_eq!(m.processors(), 40);
        assert!(m.graph().is_connected());
        // Leaves belong to k trees: degree k.
        for leaf in 0..16 {
            assert_eq!(m.graph().degree(leaf), 2, "leaf {leaf}");
        }
        // Edge count: each tree contributes 2*(side-1) edges.
        assert_eq!(m.graph().simple_edge_count(), (2 * 4 * 2 * 3) as u64);
    }

    #[test]
    fn mot1_is_a_single_tree() {
        let m = mesh_of_trees(1, 8);
        assert_eq!(m.node_count(), 8 + 7);
        assert!(m.graph().is_connected());
        assert_eq!(diameter(m.graph()), 6);
    }

    #[test]
    fn mot_diameter_logarithmic() {
        let m = mesh_of_trees(2, 8);
        // Any leaf reaches any other in <= 2 tree climbs: <= 4 lg side + O(1).
        assert!(diameter(m.graph()) <= 4 * 3 + 2);
    }

    #[test]
    fn mot_canonical_cut_is_thin() {
        let m = mesh_of_trees(2, 8);
        // Only the 8 dim-0 tree root-to-left-child edges cross.
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 8);
    }

    #[test]
    fn multigrid2_counts() {
        let m = multigrid(2, 4);
        // Levels 4,2,1: 16 + 4 + 1 = 21 nodes.
        assert_eq!(m.node_count(), 21);
        assert_eq!(m.processors(), 16);
        assert!(m.graph().is_connected());
        // Up links: 4 (level1->0) + 1 (level2->1) = 5; mesh edges 24 + 4 + 0.
        assert_eq!(m.graph().simple_edge_count(), 24 + 4 + 5);
    }

    #[test]
    fn multigrid_diameter_logarithmic() {
        let m = multigrid(2, 16);
        // Climb + descend: O(k lg side).
        assert!(diameter(m.graph()) <= 6 * 4 + 4, "{}", diameter(m.graph()));
    }

    #[test]
    fn pyramid2_counts_and_degree() {
        let m = pyramid(2, 4);
        assert_eq!(m.node_count(), 21);
        // Apex connects to its 4 children of level 1.
        let apex = 20;
        assert_eq!(m.graph().degree(apex), 4);
        // Mesh edges same as multigrid; up edges 16 + 4.
        assert_eq!(m.graph().simple_edge_count(), 24 + 4 + 16 + 4);
        assert!(m.graph().max_degree() <= (2 * 2 + 4 + 1) as u64);
    }

    #[test]
    fn pyramid_half_cut_is_dominated_by_the_base() {
        let m = pyramid(2, 8);
        // Mesh crossings per level (8 + 4 + 2) plus the 2 apex links whose
        // child sits in the kept half.
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 14 + 2);
    }

    #[test]
    fn multigrid_half_cut_capacity() {
        let m = multigrid(2, 8);
        // Mesh crossings per level (8 + 4 + 2) plus the topmost up-link.
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 14 + 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = pyramid(2, 6);
    }
}
