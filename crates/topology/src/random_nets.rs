//! Randomized machines: random-regular expanders and multibutterflies.
//!
//! Both take explicit seeds so every instance is reproducible. The expander
//! is the union of `d/2` random permutation cycles (a standard
//! constant-degree expander construction, expanding with high probability);
//! the multibutterfly replaces each butterfly splitter with `d` random
//! up-neighbors and `d` random down-neighbors per node, following
//! Upfal/Leighton–Maggs.

use fcn_multigraph::{Cut, MultigraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::family::Family;
use crate::machine::{Machine, SendCapacity};

/// Random `d`-regular-ish expander on `n` nodes: the union of `d/2` uniform
/// random permutations' cycle edges (self-loops skipped; parallel edges kept
/// as multiplicity). `d` must be even and ≥ 4 for expansion w.h.p.
pub fn expander(n: usize, d: u32, seed: u64) -> Machine {
    assert!(n >= 4, "expander needs at least 4 nodes");
    assert!(
        d >= 4 && d.is_multiple_of(2),
        "expander degree must be even and >= 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let mut b = MultigraphBuilder::new(n);
        for _ in 0..d / 2 {
            let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
            perm.shuffle(&mut rng);
            // Cycle edges of the permutation: perm[i] - perm[i+1].
            for i in 0..n {
                let (u, v) = (perm[i], perm[(i + 1) % n]);
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        if g.is_connected() {
            return Machine::new(
                Family::Expander,
                format!("expander(n={n},d={d})"),
                g,
                n,
                SendCapacity::Unlimited,
                vec![Cut::prefix(n, n / 2)],
            );
        }
        // A union of >= 2 random Hamiltonian cycles is connected by
        // construction (each cycle alone is); this branch is unreachable but
        // keeps the loop total.
    }
}

/// Multibutterfly of dimension `g` with splitter degree `d`: butterfly level
/// structure, but each node of a level-`ℓ` block (rows sharing their top `ℓ`
/// bits) gets `d` random neighbors in the upper half and `d` in the lower
/// half of its block at level `ℓ+1`.
pub fn multibutterfly(g: u32, d: u32, seed: u64) -> Machine {
    assert!(g >= 2, "multibutterfly needs dimension >= 2");
    assert!(d >= 1, "splitter degree must be >= 1");
    let rows = 1usize << g;
    let n = (g as usize + 1) * rows;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = MultigraphBuilder::new(n);
    let id = |level: u32, row: usize| (level as usize * rows + row) as NodeId;
    for level in 0..g {
        let block = rows >> level; // rows per block at this level
        let half = block / 2;
        for block_base in (0..rows).step_by(block) {
            for row in block_base..block_base + block {
                // `d` random targets in each half of the next level's block.
                for half_base in [block_base, block_base + half] {
                    for _ in 0..d {
                        let target = half_base + rng.random_range(0..half.max(1));
                        b.add_edge(id(level, row), id(level + 1, target));
                    }
                }
            }
        }
    }
    let members: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| ((v as usize % rows) >> (g - 1)) & 1 == 0)
        .collect();
    Machine::new(
        Family::Multibutterfly,
        format!("multibutterfly(g={g},d={d})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &members)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::diameter;

    #[test]
    fn expander_is_connected_and_near_regular() {
        let m = expander(64, 4, 42);
        assert!(m.graph().is_connected());
        // Each permutation cycle contributes exactly 2 to every degree.
        for u in 0..64 {
            assert_eq!(m.graph().degree(u), 4, "node {u}");
        }
        assert_eq!(m.graph().simple_edge_count(), 2 * 64);
    }

    #[test]
    fn expander_diameter_is_logarithmic() {
        let m = expander(256, 4, 7);
        // Expect Θ(lg n); allow generous slack.
        assert!(diameter(m.graph()) <= 16, "{}", diameter(m.graph()));
    }

    #[test]
    fn expander_is_deterministic_per_seed() {
        let a = expander(32, 4, 1);
        let b = expander(32, 4, 1);
        assert_eq!(a.graph(), b.graph());
        let c = expander(32, 4, 2);
        assert_ne!(a.graph(), c.graph());
    }

    #[test]
    fn multibutterfly_structure() {
        let m = multibutterfly(3, 2, 9);
        assert_eq!(m.processors(), 4 * 8);
        assert!(m.graph().is_connected());
        // Every non-final-level node emits 2d = 4 forward stubs.
        let g = m.graph();
        let total: u64 = g.simple_edge_count();
        assert_eq!(total, (3 * 8 * 4) as u64);
    }

    #[test]
    fn multibutterfly_levels_respect_blocks() {
        let m = multibutterfly(3, 2, 5);
        let rows = 8usize;
        // Edges only go between adjacent levels, within the same top-bit
        // block.
        for e in m.graph().edges() {
            let (lu, ru) = ((e.u as usize) / rows, (e.u as usize) % rows);
            let (lv, rv) = ((e.v as usize) / rows, (e.v as usize) % rows);
            assert_eq!(lu.abs_diff(lv), 1, "edge {e:?}");
            let level = lu.min(lv);
            if level > 0 {
                // Same block: top `level` bits of the rows agree.
                assert_eq!(ru >> (3 - level), rv >> (3 - level), "edge {e:?}");
            }
        }
    }

    #[test]
    fn multibutterfly_diameter_logarithmic() {
        let m = multibutterfly(4, 2, 11);
        assert!(diameter(m.graph()) <= 12);
    }
}
