//! Tree-shaped machines: complete binary tree, weak parallel-prefix network,
//! and the X-Tree.
//!
//! All use heap (level-order) numbering for the tree part: the root is 0 and
//! node `i` has children `2i+1`, `2i+2`; node `i` sits at level
//! `⌊lg(i+1)⌋`. Canonical cuts isolate the root's left subtree — the cut
//! that certifies β = Θ(1) for the tree and β = Θ(lg n) for the X-Tree.

use fcn_multigraph::{Cut, MultigraphBuilder, NodeId};

use crate::family::Family;
use crate::machine::{Machine, SendCapacity};

/// Number of nodes of a complete binary tree of the given depth (depth 0 =
/// a single root).
pub fn tree_nodes(depth: u32) -> usize {
    (1usize << (depth + 1)) - 1
}

/// Vertex ids of the subtree rooted at `r` in heap numbering, within a tree
/// of `n` nodes.
fn subtree_members(r: NodeId, n: usize) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![r];
    while let Some(u) = stack.pop() {
        if (u as usize) < n {
            out.push(u);
            stack.push(2 * u + 1);
            stack.push(2 * u + 2);
        }
    }
    out
}

/// Complete binary tree of the given depth (`2^{depth+1} - 1` processors).
///
/// β = Θ(1) (the root's subtree edges bottleneck), λ = Θ(lg n).
pub fn tree(depth: u32) -> Machine {
    assert!(depth >= 1, "tree depth must be at least 1");
    let n = tree_nodes(depth);
    let mut b = MultigraphBuilder::new(n);
    for u in 0..n as NodeId {
        for c in [2 * u + 1, 2 * u + 2] {
            if (c as usize) < n {
                b.add_edge(u, c);
            }
        }
    }
    Machine::new(
        Family::Tree,
        format!("tree(depth={depth})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &subtree_members(1, n))],
    )
}

/// Weak parallel-prefix network: an up-tree and a down-tree sharing the leaf
/// row. Leaves compute; internal nodes combine/broadcast. All nodes are
/// processors (the paper counts machine size in nodes).
///
/// β = Θ(1), λ = Θ(lg n): functionally a tree with doubled root capacity.
pub fn weak_ppn(depth: u32) -> Machine {
    assert!(depth >= 1, "weak PPN depth must be at least 1");
    let t = tree_nodes(depth); // up-tree nodes, heap-numbered 0..t
    let internal = t - (1 << depth); // nodes above the leaf row
    let n = t + internal; // down-tree shares the leaf row
    let mut b = MultigraphBuilder::new(n);
    // Up tree: heap numbering on 0..t.
    for u in 0..t as NodeId {
        for c in [2 * u + 1, 2 * u + 2] {
            if (c as usize) < t {
                b.add_edge(u, c);
            }
        }
    }
    // Down tree: internal node `i` (heap id i < internal) is vertex t + i;
    // its children are down-internal vertices or, at the last internal
    // level, the shared leaves (heap ids in [internal, t)).
    let down = |i: NodeId| -> NodeId {
        if (i as usize) < internal {
            t as NodeId + i
        } else {
            i // shared leaf
        }
    };
    for i in 0..internal as NodeId {
        for c in [2 * i + 1, 2 * i + 2] {
            if (c as usize) < t {
                b.add_edge(down(i), down(c));
            }
        }
    }
    let mut cut_members = subtree_members(1, t);
    cut_members.extend(
        subtree_members(1, internal as NodeId as usize)
            .into_iter()
            .map(|i| t as NodeId + i),
    );
    Machine::new(
        Family::WeakPpn,
        format!("weak_ppn(depth={depth})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &cut_members)],
    )
}

/// X-Tree: complete binary tree plus edges between horizontally adjacent
/// nodes at each level.
///
/// β = Θ(lg n) (a half/half cut crosses O(1) edges per level), λ = Θ(lg n).
pub fn xtree(depth: u32) -> Machine {
    assert!(depth >= 1, "x-tree depth must be at least 1");
    let n = tree_nodes(depth);
    let mut b = MultigraphBuilder::new(n);
    for u in 0..n as NodeId {
        for c in [2 * u + 1, 2 * u + 2] {
            if (c as usize) < n {
                b.add_edge(u, c);
            }
        }
    }
    // Level links: level ℓ spans ids [2^ℓ - 1, 2^{ℓ+1} - 2].
    for l in 1..=depth {
        let lo = (1u32 << l) - 1;
        let hi = (1u32 << (l + 1)) - 2;
        for u in lo..hi {
            b.add_edge(u, u + 1);
        }
    }
    Machine::new(
        Family::XTree,
        format!("xtree(depth={depth})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &subtree_members(1, n))],
    )
    .with_route_policy(crate::machine::RoutePolicy::XTreeLevels { depth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::diameter;

    #[test]
    fn tree_counts() {
        let m = tree(4);
        assert_eq!(m.processors(), 31);
        assert_eq!(m.graph().simple_edge_count(), 30);
        assert_eq!(diameter(m.graph()), 8);
        assert!(m.graph().is_connected());
    }

    #[test]
    fn tree_canonical_cut_capacity_one() {
        let m = tree(5);
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 1);
        // ... and it's roughly balanced: left subtree has (n-1)/2 nodes.
        let members = m.canonical_cuts()[0].side.iter().filter(|&&b| b).count();
        assert_eq!(members, (m.processors() - 1) / 2);
    }

    #[test]
    fn xtree_adds_level_links() {
        let m = xtree(3);
        // 14 tree edges + (1 + 3 + 7) level edges.
        assert_eq!(m.graph().simple_edge_count(), 14 + 11);
        assert!(m.graph().has_edge(1, 2));
        assert!(m.graph().has_edge(3, 4));
        assert!(m.graph().has_edge(4, 5));
        assert!(!m.graph().has_edge(6, 7));
        assert!(m.graph().max_degree() <= 5);
    }

    #[test]
    fn xtree_canonical_cut_scales_with_depth() {
        // The left-subtree cut of an X-Tree cuts ~2 edges per level plus the
        // root link: capacity Θ(depth).
        for depth in 2..=6 {
            let m = xtree(depth);
            let cap = m.canonical_cuts()[0].capacity(m.graph());
            assert!(
                (depth as u64) <= cap && cap <= 3 * depth as u64 + 2,
                "depth {depth}: cap {cap}"
            );
        }
    }

    #[test]
    fn weak_ppn_shares_leaf_row() {
        let depth = 3;
        let m = weak_ppn(depth);
        let t = tree_nodes(depth); // 15
        assert_eq!(m.processors(), t + 7);
        assert!(m.graph().is_connected());
        // Leaves (ids 7..15) have degree 2: one up-parent, one down-parent.
        for leaf in 7..15 {
            assert_eq!(m.graph().degree(leaf), 2, "leaf {leaf}");
        }
        // Both roots have degree 2.
        assert_eq!(m.graph().degree(0), 2);
        assert_eq!(m.graph().degree(t as NodeId), 2);
    }

    #[test]
    fn weak_ppn_cut_separates_left_halves() {
        let m = weak_ppn(4);
        let cap = m.canonical_cuts()[0].capacity(m.graph());
        // Left subtrees of both trees: 2 edges cross (one per root).
        assert_eq!(cap, 2);
    }

    #[test]
    fn diameters_are_logarithmic() {
        for depth in [3u32, 4, 5] {
            let m = xtree(depth);
            assert!(diameter(m.graph()) <= 2 * depth);
            let t = tree(depth);
            assert_eq!(diameter(t.graph()), 2 * depth);
        }
    }
}
