//! k-dimensional meshes, tori, and X-Grids.
//!
//! Vertices are numbered row-major with coordinate 0 most significant, so an
//! id-prefix cut at `n/2` is exactly the hyperplane `x_0 < side/2` — the cut
//! witnessing β = Θ(n^{(k-1)/k}).

use fcn_multigraph::{Cut, Multigraph, MultigraphBuilder, NodeId};

use crate::family::Family;
use crate::machine::{Machine, SendCapacity};

/// Mixed-radix decode: id -> coordinates (coordinate 0 most significant).
pub fn coords_of(id: usize, k: usize, side: usize) -> Vec<usize> {
    let mut c = vec![0; k];
    let mut rest = id;
    for i in (0..k).rev() {
        c[i] = rest % side;
        rest /= side;
    }
    debug_assert_eq!(rest, 0);
    c
}

/// Mixed-radix encode: coordinates -> id.
pub fn id_of(coords: &[usize], side: usize) -> usize {
    coords.iter().fold(0, |acc, &c| {
        debug_assert!(c < side);
        acc * side + c
    })
}

fn mesh_graph(k: usize, side: usize, wrap: bool) -> Multigraph {
    let n = side.pow(k as u32);
    let mut b = MultigraphBuilder::new(n);
    for id in 0..n {
        let c = coords_of(id, k, side);
        for d in 0..k {
            if c[d] + 1 < side {
                let mut c2 = c.clone();
                c2[d] += 1;
                b.add_edge(id as NodeId, id_of(&c2, side) as NodeId);
            } else if wrap && side > 2 {
                let mut c2 = c.clone();
                c2[d] = 0;
                b.add_edge(id as NodeId, id_of(&c2, side) as NodeId);
            }
        }
    }
    b.build()
}

/// Hyperplane cuts `x_d < side/2` for every dimension `d`.
fn hyperplane_cuts(k: usize, side: usize, total_nodes: usize) -> Vec<Cut> {
    let n = side.pow(k as u32);
    (0..k)
        .map(|d| {
            let members: Vec<NodeId> = (0..n)
                .filter(|&id| coords_of(id, k, side)[d] < side / 2)
                .map(|id| id as NodeId)
                .collect();
            Cut::from_members(total_nodes, &members)
        })
        .collect()
}

/// k-dimensional mesh with `side^k` processors.
///
/// β = Θ(n^{(k-1)/k}), λ = Θ(n^{1/k}).
pub fn mesh(k: u8, side: usize) -> Machine {
    assert!(k >= 1 && side >= 2, "mesh needs k >= 1 and side >= 2");
    let n = side.pow(k as u32);
    Machine::new(
        Family::Mesh(k),
        format!("mesh{k}(side={side})"),
        mesh_graph(k as usize, side, false),
        n,
        SendCapacity::Unlimited,
        hyperplane_cuts(k as usize, side, n),
    )
}

/// k-dimensional torus (mesh with wraparound; no wrap added for `side <= 2`
/// where it would only double edges).
pub fn torus(k: u8, side: usize) -> Machine {
    assert!(k >= 1 && side >= 3, "torus needs k >= 1 and side >= 3");
    let n = side.pow(k as u32);
    Machine::new(
        Family::Torus(k),
        format!("torus{k}(side={side})"),
        mesh_graph(k as usize, side, true),
        n,
        SendCapacity::Unlimited,
        hyperplane_cuts(k as usize, side, n),
    )
}

/// k-dimensional X-Grid: the mesh plus all diagonal (Moore-neighborhood)
/// links — every pair of nodes differing by at most 1 in each coordinate is
/// adjacent. Degree `3^k - 1`; same β/λ class as the mesh.
pub fn xgrid(k: u8, side: usize) -> Machine {
    assert!(k >= 1 && side >= 2, "x-grid needs k >= 1 and side >= 2");
    let kk = k as usize;
    let n = side.pow(k as u32);
    let mut b = MultigraphBuilder::new(n);
    // Enumerate offset vectors in {-1,0,1}^k, keep only id-increasing ones
    // to add each undirected edge once.
    let offsets = 3usize.pow(k as u32);
    for id in 0..n {
        let c = coords_of(id, kk, side);
        'offs: for mut o in 0..offsets {
            let mut c2 = c.clone();
            let mut all_zero = true;
            for cell in c2.iter_mut() {
                let delta = (o % 3) as isize - 1; // -1, 0, +1
                o /= 3;
                let x = *cell as isize + delta;
                if x < 0 || x >= side as isize {
                    continue 'offs;
                }
                if delta != 0 {
                    all_zero = false;
                }
                *cell = x as usize;
            }
            if all_zero {
                continue;
            }
            let id2 = id_of(&c2, side);
            if id2 > id {
                b.add_edge(id as NodeId, id2 as NodeId);
            }
        }
    }
    Machine::new(
        Family::XGrid(k),
        format!("xgrid{k}(side={side})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        hyperplane_cuts(kk, side, n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::diameter;

    #[test]
    fn coords_roundtrip() {
        for id in 0..27 {
            assert_eq!(id_of(&coords_of(id, 3, 3), 3), id);
        }
        assert_eq!(coords_of(5, 2, 4), vec![1, 1]);
        assert_eq!(id_of(&[1, 1], 4), 5);
    }

    #[test]
    fn mesh2_shape() {
        let m = mesh(2, 4);
        assert_eq!(m.processors(), 16);
        // 2 * side * (side-1) edges.
        assert_eq!(m.graph().simple_edge_count(), 24);
        assert_eq!(diameter(m.graph()), 6);
        assert_eq!(m.graph().max_degree(), 4);
    }

    #[test]
    fn mesh1_is_linear_array_shaped() {
        let m = mesh(1, 8);
        assert_eq!(m.graph().simple_edge_count(), 7);
        assert_eq!(diameter(m.graph()), 7);
    }

    #[test]
    fn mesh3_degree_and_diameter() {
        let m = mesh(3, 3);
        assert_eq!(m.processors(), 27);
        assert_eq!(m.graph().max_degree(), 6);
        assert_eq!(diameter(m.graph()), 6);
    }

    #[test]
    fn torus_wraps() {
        let m = torus(2, 4);
        assert_eq!(m.graph().simple_edge_count(), 32);
        assert_eq!(diameter(m.graph()), 4);
        for u in 0..16 {
            assert_eq!(m.graph().degree(u), 4);
        }
    }

    #[test]
    fn xgrid2_has_diagonals() {
        let m = xgrid(2, 3);
        // interior node (1,1) = id 4 has all 8 neighbors.
        assert_eq!(m.graph().degree(4), 8);
        assert!(m.graph().has_edge(0, 4)); // (0,0)-(1,1) diagonal
        assert_eq!(diameter(m.graph()), 2);
    }

    #[test]
    fn hyperplane_cut_capacity() {
        let m = mesh(2, 8);
        // x0 < 4 cut crosses exactly `side` edges.
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 8);
        assert_eq!(m.canonical_cuts()[1].capacity(m.graph()), 8);
        let t = torus(2, 8);
        assert_eq!(t.canonical_cuts()[0].capacity(t.graph()), 16);
    }

    #[test]
    fn prefix_half_cut_matches_dim0_hyperplane() {
        // Row-major numbering: the id-prefix cut at n/2 is the x0 hyperplane.
        let m = mesh(3, 4);
        let prefix = Cut::prefix(64, 32);
        assert_eq!(
            prefix.capacity(m.graph()),
            m.canonical_cuts()[0].capacity(m.graph())
        );
    }
}
