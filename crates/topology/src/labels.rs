//! Human-readable node labels per machine family.
//!
//! Generators number nodes for cache- and cut-friendliness; these helpers
//! recover the geometric meaning of an id (mesh coordinates, butterfly
//! (level, row), tree (level, position), ...) for debugging, DOT exports,
//! and error messages.

use fcn_multigraph::NodeId;

use crate::family::Family;
use crate::machine::Machine;
use crate::mesh::coords_of;

/// Human-readable label of node `u` in `machine`, derived from the family's
/// numbering convention. Falls back to the bare id for families whose
/// numbering has no geometric structure (expanders).
pub fn node_label(machine: &Machine, u: NodeId) -> String {
    let n = machine.node_count();
    assert!((u as usize) < n, "node {u} out of range");
    match machine.family() {
        Family::LinearArray | Family::Ring | Family::Expander => format!("{u}"),
        Family::GlobalBus => {
            if (u as usize) < machine.processors() {
                format!("p{u}")
            } else {
                "bus".to_string()
            }
        }
        Family::Tree | Family::XTree | Family::WeakPpn => {
            // Heap numbering (for the PPN, only the up-tree ids are
            // heap-like; down-tree ids are offset copies).
            let t = heap_label(u);
            if machine.family() == Family::WeakPpn {
                // The shared machine may extend past the up tree.
                let up_nodes = (machine.node_count() * 2 + 1).div_ceil(3);
                if (u as usize) >= up_nodes {
                    return format!("down.{}", heap_label(u - up_nodes as NodeId));
                }
            }
            t
        }
        Family::Mesh(k) | Family::Torus(k) | Family::XGrid(k) => {
            let side = (machine.processors() as f64).powf(1.0 / k as f64).round() as usize;
            coord_label(&coords_of(u as usize, k as usize, side))
        }
        Family::MeshOfTrees(k) => {
            let kk = k as usize;
            // leaves: side^k; internal: per dim, per line, side-1 nodes.
            let side = mot_side(machine.node_count(), kk);
            let leaves = side.pow(k as u32);
            if (u as usize) < leaves {
                format!("leaf{}", coord_label(&coords_of(u as usize, kk, side)))
            } else {
                let rest = u as usize - leaves;
                let per_dim = side.pow(k as u32 - 1) * (side - 1);
                let d = rest / per_dim;
                let in_dim = rest % per_dim;
                let line = in_dim / (side - 1);
                let h = in_dim % (side - 1) + 1;
                format!("tree[d{d},line{line},h{h}]")
            }
        }
        Family::Multigrid(k) | Family::Pyramid(k) => {
            let kk = k as usize;
            // Levels of sides side, side/2, ..., 1.
            let mut side = hierarchy_base_side(machine.node_count(), kk);
            let mut off = 0usize;
            let mut level = 0u32;
            loop {
                let count = side.pow(k as u32);
                if (u as usize) < off + count {
                    return format!(
                        "L{level}{}",
                        coord_label(&coords_of(u as usize - off, kk, side.max(1)))
                    );
                }
                off += count;
                if side == 1 {
                    break;
                }
                side /= 2;
                level += 1;
            }
            format!("{u}")
        }
        Family::Butterfly | Family::Multibutterfly => {
            // id = level · rows + row where n = (g+1)·2^g.
            let (g, rows) = butterfly_dims(n);
            let _ = g;
            format!("(L{},r{})", u as usize / rows, u as usize % rows)
        }
        Family::Ccc => {
            // id = pos · 2^g + row where n = g·2^g.
            let (g, rows) = ccc_dims(n);
            let _ = g;
            format!("(c{},r{:b})", u as usize / rows, u as usize % rows)
        }
        Family::ShuffleExchange | Family::DeBruijn | Family::WeakHypercube => {
            let g = n.trailing_zeros(); // n = 2^g exactly
            format!("{u:0width$b}", width = g as usize)
        }
    }
}

/// Label every node (small machines; DOT decoration).
pub fn all_labels(machine: &Machine) -> Vec<String> {
    (0..machine.node_count() as NodeId)
        .map(|u| node_label(machine, u))
        .collect()
}

/// DOT rendering with labels.
pub fn to_labeled_dot(machine: &Machine) -> String {
    use std::fmt::Write as _;
    let mut s = format!("graph {} {{\n", machine.family().id());
    for u in 0..machine.node_count() as NodeId {
        let _ = writeln!(s, "  {u} [label=\"{}\"];", node_label(machine, u));
    }
    for e in machine.graph().edges() {
        if e.multiplicity == 1 {
            let _ = writeln!(s, "  {} -- {};", e.u, e.v);
        } else {
            let _ = writeln!(s, "  {} -- {} [label=\"x{}\"];", e.u, e.v, e.multiplicity);
        }
    }
    s.push('}');
    s
}

fn heap_label(u: NodeId) -> String {
    let level = 32 - (u + 1).leading_zeros() - 1;
    let pos = (u + 1) - (1 << level);
    format!("t{level}.{pos}")
}

fn coord_label(coords: &[usize]) -> String {
    let parts: Vec<String> = coords.iter().map(|c| c.to_string()).collect();
    format!("({})", parts.join(","))
}

fn mot_side(n: usize, k: usize) -> usize {
    // n = side^k + k·side^{k-1}·(side-1); search powers of two.
    let mut side = 2usize;
    loop {
        let total = side.pow(k as u32) + k * side.pow(k as u32 - 1) * (side - 1);
        if total == n {
            return side;
        }
        assert!(total < n, "not a mesh-of-trees node count: {n}");
        side *= 2;
    }
}

fn hierarchy_base_side(n: usize, k: usize) -> usize {
    let mut side = 2usize;
    loop {
        let mut total = 0usize;
        let mut s = side;
        loop {
            total += s.pow(k as u32);
            if s == 1 {
                break;
            }
            s /= 2;
        }
        if total == n {
            return side;
        }
        assert!(total < n, "not a mesh-hierarchy node count: {n}");
        side *= 2;
    }
}

fn butterfly_dims(n: usize) -> (u32, usize) {
    for g in 1..=30u32 {
        let rows = 1usize << g;
        if (g as usize + 1) * rows == n {
            return (g, rows);
        }
    }
    // fcn-allow: ERR-UNWRAP documented precondition: label decoding is only called on sizes produced by the builders
    panic!("not a butterfly node count: {n}");
}

fn ccc_dims(n: usize) -> (u32, usize) {
    for g in 2..=30u32 {
        let rows = 1usize << g;
        if g as usize * rows == n {
            return (g, rows);
        }
    }
    // fcn-allow: ERR-UNWRAP documented precondition: label decoding is only called on sizes produced by the builders
    panic!("not a CCC node count: {n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_labels_are_coordinates() {
        let m = Machine::mesh(2, 4);
        assert_eq!(node_label(&m, 0), "(0,0)");
        assert_eq!(node_label(&m, 5), "(1,1)");
        assert_eq!(node_label(&m, 15), "(3,3)");
    }

    #[test]
    fn tree_labels_are_level_position() {
        let m = Machine::tree(3);
        assert_eq!(node_label(&m, 0), "t0.0");
        assert_eq!(node_label(&m, 1), "t1.0");
        assert_eq!(node_label(&m, 2), "t1.1");
        assert_eq!(node_label(&m, 7), "t3.0");
    }

    #[test]
    fn butterfly_labels_are_level_row() {
        let m = Machine::butterfly(3);
        assert_eq!(node_label(&m, 0), "(L0,r0)");
        assert_eq!(node_label(&m, 8), "(L1,r0)");
        assert_eq!(node_label(&m, 11), "(L1,r3)");
    }

    #[test]
    fn binary_labels_for_bit_machines() {
        let m = Machine::de_bruijn(4);
        assert_eq!(node_label(&m, 0), "0000");
        assert_eq!(node_label(&m, 9), "1001");
        let se = Machine::shuffle_exchange(3);
        assert_eq!(node_label(&se, 5), "101");
    }

    #[test]
    fn bus_labels_hub() {
        let m = Machine::global_bus(4);
        assert_eq!(node_label(&m, 0), "p0");
        assert_eq!(node_label(&m, 4), "bus");
    }

    #[test]
    fn hierarchy_labels_carry_levels() {
        let m = Machine::pyramid(2, 4);
        assert_eq!(node_label(&m, 0), "L0(0,0)");
        assert_eq!(node_label(&m, 16), "L1(0,0)");
        assert_eq!(node_label(&m, 20), "L2(0,0)");
    }

    #[test]
    fn mot_labels_distinguish_leaves_and_trees() {
        let m = Machine::mesh_of_trees(2, 4);
        assert_eq!(node_label(&m, 0), "leaf(0,0)");
        assert!(node_label(&m, 16).starts_with("tree[d0,line0,h1"));
        // Dim 1 trees start after dim 0's 4 lines x 3 internal nodes.
        assert!(node_label(&m, 16 + 12).starts_with("tree[d1"));
    }

    #[test]
    fn all_machines_label_every_node() {
        for fam in Family::all_with_dims(&[1, 2, 3]) {
            let m = fam.build_near(80, 2);
            let labels = all_labels(&m);
            assert_eq!(labels.len(), m.node_count(), "{fam}");
            assert!(labels.iter().all(|l| !l.is_empty()), "{fam}");
        }
    }

    #[test]
    fn labeled_dot_contains_labels_and_edges() {
        let m = Machine::mesh(2, 3);
        let dot = to_labeled_dot(&m);
        assert!(dot.contains("label=\"(1,1)\""));
        assert!(dot.contains(" -- "));
    }
}
