//! Hypercubic machines: butterfly, cube-connected cycles, shuffle-exchange,
//! de Bruijn, and the (weak) hypercube.
//!
//! All share the Table 4 class β = Θ(n/lg n), λ = Θ(lg n). Numbering puts
//! the "row" bits lowest, so splitting ids by the row's most significant bit
//! is the canonical near-bisection for the butterfly/CCC; for the
//! shuffle-exchange and de Bruijn graphs no simple cut witnesses the true
//! Θ(n/lg n) bisection, so their canonical cut is the plain half split (the
//! router measurement supplies the tight side).

use fcn_multigraph::{Cut, MultigraphBuilder, NodeId};

use crate::family::Family;
use crate::machine::{Machine, RoutePolicy, SendCapacity};

/// Butterfly of dimension `g`: `(g+1) · 2^g` processors at (level, row)
/// positions, id = `level · 2^g + row`. Straight edges keep the row; cross
/// edges at level `ℓ` flip row bit `ℓ`.
pub fn butterfly(g: u32) -> Machine {
    assert!(g >= 1, "butterfly needs dimension >= 1");
    let rows = 1usize << g;
    let n = (g as usize + 1) * rows;
    let mut b = MultigraphBuilder::new(n);
    let id = |level: u32, row: usize| (level as usize * rows + row) as NodeId;
    for level in 0..g {
        for row in 0..rows {
            b.add_edge(id(level, row), id(level + 1, row));
            b.add_edge(id(level, row), id(level + 1, row ^ (1 << level)));
        }
    }
    // Canonical cut: rows with top bit 0 (all levels). Only the 2^g cross
    // edges of level g-1 flip the top bit, so capacity = 2^g = Θ(n/lg n).
    let members: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| ((v as usize % rows) >> (g - 1)) & 1 == 0)
        .collect();
    Machine::new(
        Family::Butterfly,
        format!("butterfly(g={g})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &members)],
    )
}

/// Cube-connected cycles of dimension `g`: each hypercube corner `r` becomes
/// a `g`-cycle; node `(r, ℓ)` has cycle edges and one cube edge flipping bit
/// `ℓ` of `r`. Id = `ℓ · 2^g + r`. Degree 3.
pub fn cube_connected_cycles(g: u32) -> Machine {
    assert!(g >= 2, "CCC needs dimension >= 2 (g = 1 degenerates)");
    let rows = 1usize << g;
    let n = g as usize * rows;
    let mut b = MultigraphBuilder::new(n);
    let id = |pos: u32, row: usize| (pos as usize * rows + row) as NodeId;
    for pos in 0..g {
        for row in 0..rows {
            // Cycle edge to the next position (g >= 2 keeps this simple).
            if g > 2 || pos == 0 {
                b.add_edge(id(pos, row), id((pos + 1) % g, row));
            }
            // Cube edge flips bit `pos` (add once per pair).
            if (row >> pos) & 1 == 0 {
                b.add_edge(id(pos, row), id(pos, row ^ (1 << pos)));
            }
        }
    }
    let members: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| ((v as usize % rows) >> (g - 1)) & 1 == 0)
        .collect();
    Machine::new(
        Family::Ccc,
        format!("ccc(g={g})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::from_members(n, &members)],
    )
}

/// Shuffle-exchange on `2^g` processors: exchange edges `r ↔ r xor 1` and
/// shuffle edges `r ↔ rotate_left(r)` (fixed points 0…0 and 1…1 skipped).
pub fn shuffle_exchange(g: u32) -> Machine {
    assert!(g >= 2, "shuffle-exchange needs dimension >= 2");
    let n = 1usize << g;
    let mask = n - 1;
    let mut b = MultigraphBuilder::new(n);
    // Shuffle 2-cycles (e.g. 01 <-> 10) would insert the same unordered pair
    // from both endpoints; dedupe keeps the graph simple.
    let mut seen = std::collections::BTreeSet::new();
    for r in 0..n {
        if r & 1 == 0 {
            b.add_edge(r as NodeId, (r ^ 1) as NodeId);
        }
        let shuffled = ((r << 1) | (r >> (g - 1))) & mask;
        if shuffled != r && seen.insert((r.min(shuffled), r.max(shuffled))) {
            b.add_edge(r as NodeId, shuffled as NodeId);
        }
    }
    Machine::new(
        Family::ShuffleExchange,
        format!("shuffle_exchange(g={g})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::prefix(n, n / 2)],
    )
    // BFS trees concentrate on hub nodes; the classical bit-correction
    // scheme realizes Θ(n/lg n).
    .with_route_policy(RoutePolicy::ShuffleExchangeBits { g })
}

/// Binary de Bruijn graph on `2^g` processors: `r ↔ (2r) mod n` and
/// `r ↔ (2r+1) mod n` (self-loops at 0…0 and 1…1 skipped). Degree ≤ 4.
pub fn de_bruijn(g: u32) -> Machine {
    assert!(g >= 2, "de Bruijn needs dimension >= 2");
    let n = 1usize << g;
    let mask = n - 1;
    let mut b = MultigraphBuilder::new(n);
    // The same unordered pair can arise as a shift of both endpoints (e.g.
    // 01 -> 10 and 10 -> 01), so dedupe to keep the graph simple.
    let mut seen = std::collections::BTreeSet::new();
    for r in 0..n {
        for bit in 0..2usize {
            let t = ((r << 1) | bit) & mask;
            if t != r && seen.insert((r.min(t), r.max(t))) {
                b.add_edge(r as NodeId, t as NodeId);
            }
        }
    }
    Machine::new(
        Family::DeBruijn,
        format!("de_bruijn(g={g})"),
        b.build(),
        n,
        SendCapacity::Unlimited,
        vec![Cut::prefix(n, n / 2)],
    )
    .with_route_policy(RoutePolicy::DeBruijnBits { g })
}

/// Weak hypercube of dimension `g`: the full binary hypercube wiring
/// (degree `g`), but each node may transmit on only one incident wire per
/// tick — the "weak" restriction that brings its usable bandwidth into the
/// fixed-degree class β = Θ(n/lg n).
pub fn weak_hypercube(g: u32) -> Machine {
    assert!(g >= 1, "hypercube needs dimension >= 1");
    let n = 1usize << g;
    let mut b = MultigraphBuilder::new(n);
    for r in 0..n {
        for bit in 0..g {
            let t = r ^ (1usize << bit);
            if t > r {
                b.add_edge(r as NodeId, t as NodeId);
            }
        }
    }
    Machine::new(
        Family::WeakHypercube,
        format!("weak_hypercube(g={g})"),
        b.build(),
        n,
        SendCapacity::PerNode(vec![1; n]),
        vec![Cut::prefix(n, n / 2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::diameter;

    #[test]
    fn butterfly_counts() {
        let m = butterfly(3);
        assert_eq!(m.processors(), 4 * 8);
        // 2^{g+1} edges per level gap: 3 gaps * 16 = 48.
        assert_eq!(m.graph().simple_edge_count(), 48);
        assert!(m.graph().is_connected());
        assert!(m.graph().max_degree() <= 4);
    }

    #[test]
    fn butterfly_cut_is_one_per_row() {
        for g in 2..=5 {
            let m = butterfly(g);
            assert_eq!(
                m.canonical_cuts()[0].capacity(m.graph()),
                1u64 << g,
                "g = {g}"
            );
        }
    }

    #[test]
    fn butterfly_diameter() {
        // 2g hops suffice (up and down); at least g needed.
        let m = butterfly(4);
        let d = diameter(m.graph());
        assert!((4..=9).contains(&d), "diameter {d}");
    }

    #[test]
    fn ccc_is_cubic() {
        let m = cube_connected_cycles(3);
        assert_eq!(m.processors(), 3 * 8);
        for u in 0..24 {
            assert_eq!(m.graph().degree(u), 3, "node {u}");
        }
        assert!(m.graph().is_connected());
    }

    #[test]
    fn ccc_g2_stays_simple() {
        let m = cube_connected_cycles(2);
        assert!(m.graph().is_connected());
        // Cycle of length 2 collapses to a single edge, not a double edge.
        assert!(m.graph().edges().all(|e| e.multiplicity == 1));
    }

    #[test]
    fn ccc_cut_capacity() {
        let m = cube_connected_cycles(4);
        // Cube edges at position g-1: 2^{g-1} pairs.
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 8);
    }

    #[test]
    fn shuffle_exchange_degree_bounded() {
        let m = shuffle_exchange(4);
        assert_eq!(m.processors(), 16);
        assert!(m.graph().is_connected());
        assert!(m.graph().max_degree() <= 3);
    }

    #[test]
    fn de_bruijn_structure() {
        let m = de_bruijn(4);
        assert_eq!(m.processors(), 16);
        assert!(m.graph().is_connected());
        assert!(m.graph().max_degree() <= 4);
        // Node 1 connects to 2 and 3 (shifts) and 8 (predecessor 1000 -> 0001).
        assert!(m.graph().has_edge(1, 2));
        assert!(m.graph().has_edge(1, 3));
        assert!(m.graph().has_edge(8, 1));
        // Diameter is exactly g.
        assert_eq!(diameter(m.graph()), 4);
    }

    #[test]
    fn de_bruijn_no_self_loops() {
        let m = de_bruijn(5);
        assert_eq!(m.graph().self_loop_count(), 0);
    }

    #[test]
    fn weak_hypercube_capacities() {
        let m = weak_hypercube(4);
        assert_eq!(m.processors(), 16);
        assert_eq!(m.graph().simple_edge_count(), 32);
        assert_eq!(m.send_capacity(3), 1);
        assert_eq!(diameter(m.graph()), 4);
        // Half cut = dimension cut: 2^{g-1} edges.
        assert_eq!(m.canonical_cuts()[0].capacity(m.graph()), 8);
    }
}
