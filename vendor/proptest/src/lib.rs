//! Workspace-local `proptest` shim.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: range and `any::<T>()` strategies, tuple composition, `prop_map`,
//! `collection::vec`, the `proptest!` test-harness macro, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs a fixed number of cases from a seed derived
//! deterministically from the test name, so failures reproduce exactly on
//! every run and every platform. That matches how this workspace uses
//! property tests — as randomized-but-reproducible invariant checks.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A generator of test-case values.
    ///
    /// `generate` takes `&self` so strategies compose and can be reused
    /// across cases; all entropy flows through the runner's RNG.
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: std::fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: std::fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for "any value of `T`", returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform values over the whole domain of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for vectors with lengths drawn from `sizes`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    /// A `Vec` of values from `element` with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while still
            // exercising each invariant across a healthy spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a, used to derive a per-test seed from the test name so every
    /// test sees a distinct but fully reproducible stream.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one property through `config.cases` accepted cases.
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failed case or
    /// when rejection sampling starves.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(16).max(256);
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {name}: gave up after {rejected} rejected cases \
                             ({accepted} accepted)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name}: case {accepted} failed: {msg}");
                }
            }
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |prop_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    result
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                file!(),
                line!()
            )));
        }
    }};
}

/// Reject the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = (0u32..100, 0u32..100).prop_map(|(a, b)| a + b);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u32>(), 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
        }

        #[test]
        fn assume_filters(a in 0i64..100) {
            prop_assume!(a != 50);
            prop_assert!(a != 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn configured_case_count_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
