//! Workspace-local serde shim.
//!
//! The real `serde` cannot be fetched in this offline build image, so this
//! crate provides the subset the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on non-generic named-field structs and data-bearing enums,
//! routed through one concrete [`Value`] tree instead of serde's generic
//! visitor machinery. `serde_json` (also vendored) renders and parses that
//! tree; round-trips are exact for every type the workspace derives.

pub use serde_derive::{Deserialize, Serialize};

/// The single in-memory data model (a JSON-shaped tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (declaration order for structs).
    Object(Vec<(String, Value)>),
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: object field lookup.
pub fn value_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field {name:?}"))),
        other => Err(DeError::new(format!(
            "expected object with field {name:?}, found {other:?}"
        ))),
    }
}

/// Helper used by derived code: array element lookup.
pub fn value_index(v: &Value, i: usize) -> Result<&Value, DeError> {
    match v {
        Value::Array(items) => items
            .get(i)
            .ok_or_else(|| DeError::new(format!("missing tuple element {i}"))),
        other => Err(DeError::new(format!("expected array, found {other:?}"))),
    }
}

// ---------- primitive impls ----------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new("integer out of range")),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x < 0 { Value::Int(x) } else { Value::UInt(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range")),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Deserialize for &'static str {
    /// Deserializing into a borrowed `&'static str` leaks the parsed string.
    /// The workspace only uses this for small interned labels (e.g. table
    /// names in theorem statements), so the leak is bounded and acceptable
    /// for a shim.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($name::from_value(value_index(v, $idx)?)?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (String, f64) =
            Deserialize::from_value(&("x".to_string(), 2.5f64).to_value()).unwrap();
        assert_eq!(t, ("x".to_string(), 2.5));
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Deserialize::from_value(&Some(3u32).to_value()).unwrap();
        assert_eq!(some, Some(3));
        let none: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert!(value_field(&v, "b").is_err());
        assert!(value_field(&v, "a").is_ok());
    }
}
