//! Derive macros for the vendored `serde` shim.
//!
//! The shim's data model is a single [`serde::Value`] tree, so the derives
//! are simple: a struct serializes to an object of its fields in declaration
//! order; an enum serializes externally tagged (unit variants as bare
//! strings, data variants as single-key objects), matching `serde_json`'s
//! default representation closely enough for this workspace's round-trips.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! hand-rolled walk over `proc_macro::TokenTree` extracts the type's shape
//! (name, field names, variant shapes), then the impls are emitted as
//! formatted source strings. Supported shapes — all the workspace uses:
//! non-generic named-field structs and non-generic enums with unit, tuple,
//! or struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of a parsed type.
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this arity.
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

/// Skip attributes (`#[...]`, `#![...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Punct(p2)) if p2.as_char() == '!') {
                    i += 1;
                }
                i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split a brace-group's tokens into comma-separated top-level chunks.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(t);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field name from a `name: Type` chunk (attributes/visibility skipped).
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let i = skip_meta(chunk, 0);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other}")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, found {other}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type {name}"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "vendored serde derive does not support tuple struct {name}"
            ))
        }
        other => return Err(format!("expected {{...}} body for {name}, found {other:?}")),
    };
    let chunks = split_commas(body.into_iter().collect());
    match kind.as_str() {
        "struct" => {
            let fields = chunks
                .iter()
                .filter_map(|c| field_name(c))
                .collect::<Vec<_>>();
            Ok(Shape::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            for chunk in &chunks {
                let i = skip_meta(chunk, 0);
                let vname = match chunk.get(i) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                let kind = match chunk.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = split_commas(g.stream().into_iter().collect()).len();
                        VariantKind::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = split_commas(g.stream().into_iter().collect())
                            .iter()
                            .filter_map(|c| field_name(c))
                            .collect();
                        VariantKind::Struct(fields)
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: vname, kind });
            }
            Ok(Shape::Enum { name, variants })
        }
        other => Err(format!("cannot derive for {other} items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f})),"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{items}]))]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let gets: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value_field(v, {f:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{\n{gets}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: String = (0..*arity)
                                .map(|k| format!(
                                    "::serde::Deserialize::from_value(::serde::value_index(payload, {k})?)?,"
                                ))
                                .collect();
                            Some(format!(
                                "{vn:?} => return Ok({name}::{vn}({items})),\n"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let items: String = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::value_field(payload, {f:?})?)?,"
                                ))
                                .collect();
                            Some(format!(
                                "{vn:?} => return Ok({name}::{vn} {{ {items} }}),\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::String(s) = v {{\n\
                             match s.as_str() {{\n{unit_arms}\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         if let ::serde::Value::Object(entries) = v {{\n\
                             if let Some((tag, payload)) = entries.first().map(|(k, p)| (k.as_str(), p)) {{\n\
                                 match tag {{\n{data_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::new(concat!(\"no matching variant of \", stringify!({name}))))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
