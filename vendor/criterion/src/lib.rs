//! Workspace-local `criterion` shim.
//!
//! A minimal wall-clock benchmark harness exposing the subset of the
//! criterion API the workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! There is no statistics engine: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports min/median/mean per
//! iteration to stdout. Good enough for the relative comparisons these
//! benches are used for, with zero external dependencies.

use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(function: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), p))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// Per-iteration durations collected by [`Bencher::iter`].
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one duration per sample.
    ///
    /// Each sample times a batch of iterations sized so a batch takes at
    /// least ~1ms, amortizing timer overhead for fast closures.
    // Timing closures is this shim's entire purpose; it is one of the
    // sanctioned wall-clock sites named in clippy.toml.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: grow the batch until it takes >= 1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{}/{id}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// A standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let mut group = BenchmarkGroup {
            name: id.clone(),
            sample_size: 20,
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }

    /// Accepted for compatibility; configuration is fixed in this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
