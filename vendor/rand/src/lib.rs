//! Workspace-local deterministic PRNG shim.
//!
//! This crate re-implements the (small) subset of the `rand` API used by the
//! fcn workspace so that the build is fully self-contained — the build image
//! has no network access and no vendored registry, so external crates cannot
//! be fetched. Everything here is deterministic by construction:
//!
//! * [`rngs::StdRng`] is an xoshiro256** generator seeded through SplitMix64
//!   (`seed_from_u64` matches the usual seeding recipe);
//! * [`Rng::random_range`] uses plain multiply-shift range reduction — biased
//!   by at most 2⁻⁶⁴, stable across platforms, and much cheaper than
//!   rejection sampling;
//! * [`seq::SliceRandom::shuffle`] is a Fisher–Yates walk.
//!
//! The exact output streams differ from upstream `rand`; the workspace never
//! relied on them, only on *reproducibility for a fixed seed*, which this
//! crate guarantees bit-for-bit on every platform.

/// Low-level entropy source: a full-period 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Marker for usable generators — the bound to write in APIs
/// (`fn f(rng: &mut impl Rng)`). Sampling helpers live on [`RngExt`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sampling helpers, implemented for every [`Rng`]. Imported separately
/// (`use rand::RngExt`) following the core/ext trait split.
pub trait RngExt: Rng {
    /// A uniformly distributed value of a primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in the given (half-open or inclusive) range.
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types producible uniformly from raw generator output.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift reduction of a raw 64-bit draw onto `[0, span)`.
#[inline]
pub(crate) fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — also used standalone for seed derivation elsewhere.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic and platform-independent.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod seq {
    use super::{reduce, Rng};

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Uses the raw sampler directly so `R` may be unsized (the
            // range-sampling helper requires `Self: Sized`).
            for i in (1..self.len()).rev() {
                let j = reduce(rng.next_u64(), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        type Output;
        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[reduce(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice sorted");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10u32, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
