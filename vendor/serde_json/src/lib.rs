//! Workspace-local `serde_json` shim.
//!
//! Renders and parses the vendored serde [`Value`] tree as compact JSON
//! (no spaces after `:` or `,`, matching upstream `serde_json::to_string`).
//! Supports everything the workspace serializes: objects, arrays, strings,
//! booleans, null, integers, and finite floats (non-finite floats render as
//! `null`, as upstream does).

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Render any `Serialize` type as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------- rendering ----------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` on f64 is Rust's shortest round-trip formatting and
                // always includes a decimal point or exponent, so floats stay
                // distinguishable from integers in the output.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------- parsing ----------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let v = Value::Object(vec![("x".into(), Value::UInt(1))]);
        assert_eq!(to_string(&v).unwrap(), r#"{"x":1}"#);
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("mesh 2d".into())),
            ("n".into(), Value::UInt(64)),
            ("neg".into(), Value::Int(-3)),
            ("rate".into(), Value::Float(0.25)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "edges".into(),
                Value::Array(vec![Value::UInt(0), Value::UInt(1)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse_value(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te".into());
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse_value(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{").is_err());
    }
}
