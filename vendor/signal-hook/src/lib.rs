//! Workspace-local shim for the subset of the `signal-hook` crate API this
//! repository uses: registering an `AtomicBool` that flips to `true` when a
//! POSIX signal arrives (`signal_hook::flag::register`).
//!
//! The real crate supports handler chaining, iterator APIs, and exotic
//! platforms; the daemon in `crates/serve` only needs "set a flag on
//! SIGTERM/SIGINT so the accept loop can drain". The handler installed here
//! does the only thing that is async-signal-safe: a relaxed atomic store
//! into a process-global slot table. Each registered flag is intentionally
//! leaked (one `Arc` clone per registration) so the pointer stored in the
//! slot table can never dangle, no matter when the signal fires.

use std::io;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

/// Signal numbers for the platforms this workspace targets (Linux).
pub mod consts {
    /// Termination request (`kill <pid>` default).
    pub const SIGTERM: i32 = 15;
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
}

/// Highest signal number the slot table accepts. Linux real-time signals
/// stop at 64; the daemon only registers SIGTERM/SIGINT anyway.
const MAX_SIGNAL: usize = 64;

static SLOTS: [AtomicPtr<AtomicBool>; MAX_SIGNAL] =
    [const { AtomicPtr::new(ptr::null_mut()) }; MAX_SIGNAL];

extern "C" {
    /// POSIX `signal(2)`. `usize` stands in for the handler function
    /// pointer / `SIG_ERR` sentinel so the declaration needs no libc types.
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIG_ERR: usize = usize::MAX;

extern "C" fn flag_handler(signum: i32) {
    if (signum as usize) < MAX_SIGNAL {
        let p = SLOTS[signum as usize].load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: the pointer was produced by Arc::into_raw in
            // `flag::register` and the Arc is never reclaimed, so the
            // allocation outlives the process.
            unsafe { (*p).store(true, Ordering::Release) };
        }
    }
}

/// The `signal_hook::flag` module: signal-to-`AtomicBool` bridging.
pub mod flag {
    use super::*;

    /// Install a handler for `signum` that sets `flag` to `true` when the
    /// signal is delivered. Later registrations for the same signal replace
    /// the flag observed by the handler. Returns an error for out-of-range
    /// signal numbers or if the kernel rejects the handler.
    pub fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        if signum <= 0 || signum as usize >= MAX_SIGNAL {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("signal {signum} out of range"),
            ));
        }
        // Leak one strong count so the handler-visible pointer stays valid
        // for the life of the process (signals can arrive at any time).
        let raw = Arc::into_raw(flag) as *mut AtomicBool;
        let prev = SLOTS[signum as usize].swap(raw, Ordering::AcqRel);
        // A replaced registration's Arc stays leaked on purpose: the old
        // pointer may still be observed by a handler running concurrently.
        let _ = prev;
        // SAFETY: installing an `extern "C"` fn as a signal handler is the
        // documented contract of signal(2); the handler body is
        // async-signal-safe (single atomic store).
        let rc = unsafe { signal(signum, flag_handler as *const () as usize) };
        if rc == SIG_ERR {
            return Err(io::Error::other(format!(
                "signal({signum}) rejected by the kernel"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_rejects_out_of_range() {
        assert!(flag::register(0, Arc::new(AtomicBool::new(false))).is_err());
        assert!(flag::register(-3, Arc::new(AtomicBool::new(false))).is_err());
        assert!(flag::register(9999, Arc::new(AtomicBool::new(false))).is_err());
    }

    #[test]
    fn raised_signal_sets_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGTERM, flag.clone()).unwrap();
        assert!(!flag.load(Ordering::SeqCst));
        // Deliver SIGTERM to ourselves; the handler must set the flag
        // instead of killing the test process.
        // SAFETY: raise(3) is async-signal-safe and the handler installed
        // above replaces the default terminate action.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        let rc = unsafe { raise(consts::SIGTERM) };
        assert_eq!(rc, 0);
        assert!(flag.load(Ordering::SeqCst));
    }
}
